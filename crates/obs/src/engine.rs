//! The observability engine: registry sampler, series store, range
//! queries, alert evaluation and window persistence.
//!
//! One [`ObsEngine`] instance sits next to a controller. Each call to
//! [`ObsEngine::observe`] snapshots the telemetry registry at a virtual
//! tick, delta-encodes every metric into its [`SeriesRing`] (histograms
//! expand into `:count`, `:sum` and `:le:<bound>` sub-series), evaluates
//! the alert rules, and periodically persists each series' raw window
//! through the segmented group-commit store (`tsdb` table) with bounded
//! retention. Everything is keyed on the virtual clock — no wall time —
//! so the same tick sequence produces the same series, the same alert
//! transitions and the same persisted windows on any worker layout.

use crate::alert::{self, AlertError, AlertExpr, AlertRule, AlertState, Transition};
use crate::series::{Point, SeriesKind, SeriesRing};
use imcf_store::Table;
use imcf_telemetry::{quantile_from_buckets, Counter, Gauge, MetricView, Registry, TraceEvent};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Sampler/retention tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Sample every N virtual ticks (1 = every tick).
    pub interval_ticks: u64,
    /// Raw points retained per series.
    pub capacity: usize,
    /// Evicted raw points folded into one coarse block.
    pub downsample_every: usize,
    /// Coarse blocks retained per series.
    pub coarse_capacity: usize,
    /// Persist windows every N samples (0 disables persistence even when
    /// a store directory was given).
    pub persist_every: u64,
    /// Persisted windows retained per series before the oldest is deleted.
    pub retention_windows: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            interval_ticks: 1,
            capacity: 512,
            downsample_every: 8,
            coarse_capacity: 256,
            persist_every: 64,
            retention_windows: 4,
        }
    }
}

/// One persisted raw window of a series (a row in the `tsdb` table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesWindow {
    pub series: String,
    pub kind: SeriesKind,
    pub start_tick: u64,
    pub end_tick: u64,
    /// Delta-encoded points as stored in the ring.
    pub points: Vec<Point>,
    /// Counter delta-encoding state, carried so a restart never double
    /// counts (`None` for gauges).
    pub last_raw: Option<f64>,
    pub base: f64,
}

/// Engine state persisted alongside windows (a single row in the
/// `tsdb_meta` table) so a restart resumes sampling and alerting where
/// the previous process stopped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsState {
    pub last_sample_tick: Option<u64>,
    pub samples: u64,
    /// Alert machine positions by rule name.
    pub alerts: Vec<(String, AlertState)>,
}

/// Why a query failed, mapped by the API layer onto 400/404.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Malformed parameters (unknown `fn`, bad number, gauge rate, ...).
    BadRequest(String),
    /// The series does not exist (yet).
    UnknownSeries(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::BadRequest(msg) => write!(f, "bad query: {msg}"),
            QueryError::UnknownSeries(series) => write!(f, "unknown series: {series}"),
        }
    }
}

impl std::error::Error for QueryError {}

struct RuleRuntime {
    rule: AlertRule,
    state: AlertState,
    last_value: Option<f64>,
    fired_count: u64,
    /// `"{series}:count"`, precomputed so per-tick evaluation of a rule
    /// whose series is absent (or a histogram shorthand) never allocates.
    count_key: String,
}

impl RuleRuntime {
    fn new(rule: AlertRule) -> RuleRuntime {
        let count_key = format!("{}:count", rule.expr.series());
        RuleRuntime {
            rule,
            state: AlertState::Inactive,
            last_value: None,
            fired_count: 0,
            count_key,
        }
    }
}

/// Registry handles the engine publishes into on every sample. Resolved
/// once and keyed by the registry's address: an engine observes one
/// registry for its lifetime, so steady-state ticks skip the name lookup
/// (which allocates a `MetricKey`) entirely.
struct SelfHandles {
    registry_addr: usize,
    samples: Counter,
    series: Gauge,
    evictions: Counter,
    firing: Gauge,
}

struct Storage {
    windows: Table<SeriesWindow>,
    meta: Table<ObsState>,
    meta_id: Option<u64>,
    /// Persisted window row ids per series, oldest first (retention).
    window_ids: BTreeMap<String, Vec<u64>>,
}

/// Counters the engine keeps about itself, surfaced via `imcf doctor`
/// and `obs_bench`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ObsStats {
    pub samples: u64,
    pub series: u64,
    pub evictions: u64,
    pub windows_persisted: u64,
    pub windows_deleted: u64,
    pub storage_errors: u64,
    pub alert_transitions: u64,
    pub alerts_fired: u64,
}

/// The in-process time-series + alerting engine.
pub struct ObsEngine {
    config: ObsConfig,
    series: BTreeMap<String, SeriesRing>,
    /// Histogram bucket bounds by histogram series key, refreshed each
    /// sample (quantile queries need them to rebuild the distribution).
    bounds: BTreeMap<String, Vec<f64>>,
    rules: Vec<RuleRuntime>,
    last_sample_tick: Option<u64>,
    samples: u64,
    evictions_published: u64,
    stats: ObsStats,
    storage: Option<Storage>,
    self_handles: Option<SelfHandles>,
    /// Reused buffer of per-rule expression values (one slot per rule).
    eval_scratch: Vec<Option<f64>>,
}

/// Appends the `{k=v,...}` label suffix (nothing when unlabeled).
fn append_labels(key: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
}

/// Builds the full series key into a reusable scratch string: dotted
/// name, then the `:count` / `:sum` / `:le:<bound>` sub-series suffix,
/// then `{k=v,...}` when labeled — suffix before labels keeps the key
/// parseable by [`alert::base_metric`].
fn build_key(key: &mut String, name: &str, suffix: &str, labels: &[(String, String)]) {
    key.clear();
    key.push_str(name);
    key.push_str(suffix);
    append_labels(key, labels);
}

/// Formats an f64 bound the same way everywhere so bucket sub-series keys
/// are stable.
fn bound_token(bound: f64) -> String {
    format!("{bound}")
}

impl ObsEngine {
    /// An engine with no persistence.
    pub fn in_memory(config: ObsConfig, rules: Vec<AlertRule>) -> Result<ObsEngine, AlertError> {
        alert::validate_rules(&rules)?;
        Ok(ObsEngine {
            config,
            series: BTreeMap::new(),
            bounds: BTreeMap::new(),
            rules: rules.into_iter().map(RuleRuntime::new).collect(),
            last_sample_tick: None,
            samples: 0,
            evictions_published: 0,
            stats: ObsStats::default(),
            storage: None,
            self_handles: None,
            eval_scratch: Vec::new(),
        })
    }

    /// An engine persisting windows under `dir` (tables `tsdb` and
    /// `tsdb_meta`), restoring any previous state found there.
    pub fn open(
        dir: impl AsRef<Path>,
        config: ObsConfig,
        rules: Vec<AlertRule>,
    ) -> Result<ObsEngine, ObsOpenError> {
        let mut engine = ObsEngine::in_memory(config, rules).map_err(ObsOpenError::Rules)?;
        let windows: Table<SeriesWindow> =
            Table::open(&dir, "tsdb").map_err(|e| ObsOpenError::Store(e.to_string()))?;
        let meta: Table<ObsState> =
            Table::open(&dir, "tsdb_meta").map_err(|e| ObsOpenError::Store(e.to_string()))?;

        // Rebuild each ring from its most recent persisted window; track
        // every window id per series so retention can delete the oldest.
        let mut window_ids: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut latest: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // series -> (end_tick, id)
        for (id, row) in windows.scan() {
            window_ids.entry(row.series.clone()).or_default().push(id);
            let slot = latest.entry(row.series.clone()).or_insert((0, id));
            if row.end_tick >= slot.0 {
                *slot = (row.end_tick, id);
            }
        }
        for ids in window_ids.values_mut() {
            ids.sort_unstable();
        }
        for (series, (_, id)) in &latest {
            if let Some(row) = windows.get(*id) {
                let ring = SeriesRing::restore(
                    row.kind,
                    engine.config.capacity,
                    engine.config.downsample_every,
                    engine.config.coarse_capacity,
                    row.points.clone(),
                    row.last_raw,
                    row.base,
                );
                engine.series.insert(series.clone(), ring);
            }
        }

        let mut meta_id = None;
        for (id, state) in meta.scan() {
            meta_id = Some(id);
            engine.last_sample_tick = state.last_sample_tick;
            engine.samples = state.samples;
            engine.stats.samples = state.samples;
            for (name, saved) in &state.alerts {
                if let Some(rt) = engine.rules.iter_mut().find(|rt| rt.rule.name == *name) {
                    rt.state = *saved;
                }
            }
        }

        engine.storage = Some(Storage {
            windows,
            meta,
            meta_id,
            window_ids,
        });
        Ok(engine)
    }

    pub fn config(&self) -> &ObsConfig {
        &self.config
    }

    pub fn stats(&self) -> ObsStats {
        let mut stats = self.stats;
        stats.series = self.series.len() as u64;
        stats.evictions = self.total_evictions();
        stats
    }

    fn total_evictions(&self) -> u64 {
        self.series.values().map(|r| r.evictions()).sum()
    }

    /// The tick of the most recent sample.
    pub fn last_tick(&self) -> Option<u64> {
        self.last_sample_tick
    }

    /// All series keys, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.series.keys().cloned().collect()
    }

    /// Samples the registry at `tick` if the sampling interval has
    /// elapsed. Returns `true` when a sample was taken.
    pub fn observe(&mut self, tick: u64, registry: &Registry) -> bool {
        let due = match self.last_sample_tick {
            None => true,
            Some(last) => tick >= last.saturating_add(self.config.interval_ticks.max(1)),
        };
        if !due {
            return false;
        }
        self.bind_self_handles(registry);
        self.sample(tick, registry);
        self.evaluate_alerts(tick, registry);
        self.publish_self_metrics();
        self.samples += 1;
        self.stats.samples = self.samples;
        self.last_sample_tick = Some(tick);
        if self.config.persist_every > 0 && self.samples.is_multiple_of(self.config.persist_every) {
            self.persist();
        }
        true
    }

    /// Pushes one reading into the ring for `key`, creating the ring
    /// (and only then owning the key string) on first sight. Steady-state
    /// ticks take the borrowed-lookup path — no allocation per series.
    fn push_sample(&mut self, key: &str, kind: SeriesKind, tick: u64, value: f64) {
        if let Some(ring) = self.series.get_mut(key) {
            ring.push(tick, value);
            return;
        }
        let mut ring = SeriesRing::new(
            kind,
            self.config.capacity,
            self.config.downsample_every,
            self.config.coarse_capacity,
        );
        ring.push(tick, value);
        self.series.insert(key.to_string(), ring);
    }

    /// Samples every registry metric through the allocation-free
    /// [`MetricView`] visitor. A single scratch string is reused for key
    /// building across the whole visit, so a steady-state sample costs
    /// ring pushes plus atomic loads — no snapshot vectors, no quantile
    /// digests, no per-series strings.
    fn sample(&mut self, tick: u64, registry: &Registry) {
        use std::fmt::Write as _;

        let mut scratch = String::new();
        registry.visit_metrics(|name, labels, view| match view {
            MetricView::Counter(total) => {
                build_key(&mut scratch, name, "", labels);
                self.push_sample(&scratch, SeriesKind::Counter, tick, total as f64);
            }
            MetricView::Gauge(value) => {
                build_key(&mut scratch, name, "", labels);
                self.push_sample(&scratch, SeriesKind::Gauge, tick, value);
            }
            MetricView::Histogram(h) => {
                build_key(&mut scratch, name, ":count", labels);
                self.push_sample(&scratch, SeriesKind::Counter, tick, h.count() as f64);
                build_key(&mut scratch, name, ":sum", labels);
                self.push_sample(&scratch, SeriesKind::Counter, tick, h.sum());
                build_key(&mut scratch, name, "", labels);
                if !self.bounds.contains_key(scratch.as_str()) {
                    self.bounds
                        .insert(scratch.clone(), h.bucket_bounds().to_vec());
                }
                let mut cumulative = 0u64;
                for (i, bound) in h.bucket_bounds().iter().enumerate() {
                    cumulative += h.bucket_count(i);
                    scratch.clear();
                    scratch.push_str(name);
                    scratch.push_str(":le:");
                    let _ = write!(scratch, "{bound}");
                    append_labels(&mut scratch, labels);
                    self.push_sample(&scratch, SeriesKind::Counter, tick, cumulative as f64);
                }
            }
        });
    }

    /// Resolves (or re-resolves, if `observe` was handed a different
    /// registry) the handles for the engine's own metrics. The cache is
    /// keyed by registry address only — if a registry were dropped and a
    /// new one allocated at the same address, the self metrics would keep
    /// feeding the orphaned atomics. An engine pairs with one registry
    /// for its lifetime, so the trade is safe and saves four name
    /// lookups (each allocating a `MetricKey`) per sample.
    fn bind_self_handles(&mut self, registry: &Registry) {
        let addr = registry as *const Registry as usize;
        if self
            .self_handles
            .as_ref()
            .is_some_and(|h| h.registry_addr == addr)
        {
            return;
        }
        self.self_handles = Some(SelfHandles {
            registry_addr: addr,
            samples: registry.counter("obs.samples"),
            series: registry.gauge("obs.series"),
            evictions: registry.counter("obs.evictions"),
            firing: registry.gauge("alerts.firing"),
        });
    }

    /// Reports the engine's own counters into the sampled registry so the
    /// observability plane observes itself (visible from the next sample).
    fn publish_self_metrics(&mut self) {
        let evictions = self.total_evictions();
        let newly = evictions.saturating_sub(self.evictions_published);
        self.evictions_published = evictions;
        let series_len = self.series.len() as f64;
        if let Some(h) = &self.self_handles {
            h.samples.inc();
            h.series.set(series_len);
            if newly > 0 {
                h.evictions.add(newly);
            }
        }
    }

    fn evaluate_alerts(&mut self, tick: u64, registry: &Registry) {
        // Evaluate expressions against the series maps first (immutable
        // borrow), then apply state transitions. The value buffer is
        // reused across ticks.
        let mut values = std::mem::take(&mut self.eval_scratch);
        values.clear();
        values.extend(self.rules.iter().map(|rt| self.eval_expr(rt, tick)));
        let mut firing = 0u64;
        for (rt, value) in self.rules.iter_mut().zip(values.iter().copied()) {
            rt.last_value = value;
            let breach = value.map(|v| rt.rule.cmp.holds(v, rt.rule.threshold)) == Some(true);
            let (next, edge) = alert::step(rt.state, breach, tick, rt.rule.for_ticks);
            rt.state = next;
            if let Some(edge) = edge {
                self.stats.alert_transitions += 1;
                registry
                    .counter_with(
                        "alerts.transitions",
                        &[("alert", rt.rule.name.as_str()), ("to", edge.label())],
                    )
                    .inc();
                match edge {
                    Transition::ToFiring => {
                        rt.fired_count += 1;
                        self.stats.alerts_fired += 1;
                        registry.record_event(TraceEvent::point(
                            "alert.firing",
                            &[
                                ("alert", rt.rule.name.as_str()),
                                ("severity", rt.rule.severity.label()),
                            ],
                        ));
                        // Snapshot recent causal traces at the moment the
                        // alert fires (no-op while the recorder is off).
                        imcf_telemetry::trace::recorder()
                            .trigger(&format!("alert:{}", rt.rule.name));
                    }
                    Transition::ToResolved => {
                        registry.record_event(TraceEvent::point(
                            "alert.resolved",
                            &[("alert", rt.rule.name.as_str())],
                        ));
                    }
                    Transition::ToPending => {}
                }
            }
            if matches!(rt.state, AlertState::Firing(_)) {
                firing += 1;
            }
        }
        self.eval_scratch = values;
        if let Some(h) = &self.self_handles {
            h.firing.set(firing as f64);
        }
    }

    fn eval_expr(&self, rt: &RuleRuntime, now: u64) -> Option<f64> {
        match &rt.rule.expr {
            AlertExpr::Value(series) => self.lookup(series)?.value(),
            AlertExpr::Rate(series, window) => Some(
                self.counter_ring_with(series, &rt.count_key)?
                    .rate(now, *window),
            ),
            AlertExpr::Increase(series, window) => Some(
                self.counter_ring_with(series, &rt.count_key)?
                    .increase(now, *window),
            ),
            AlertExpr::Quantile(series, q, window) => {
                self.quantile_over_time(series, *q, *window, now)
            }
        }
    }

    fn lookup(&self, series: &str) -> Option<&SeriesRing> {
        self.series.get(series)
    }

    /// Resolves a counter series, accepting a bare histogram name as a
    /// shorthand for its `:count` sub-series.
    fn counter_ring(&self, series: &str) -> Option<&SeriesRing> {
        if let Some(ring) = self.series.get(series) {
            return (ring.kind() == SeriesKind::Counter).then_some(ring);
        }
        self.series
            .get(&format!("{series}:count"))
            .filter(|r| r.kind() == SeriesKind::Counter)
    }

    /// [`ObsEngine::counter_ring`] with the `:count` fallback key already
    /// built — the allocation-free path for per-tick alert evaluation.
    fn counter_ring_with(&self, series: &str, count_key: &str) -> Option<&SeriesRing> {
        if let Some(ring) = self.series.get(series) {
            return (ring.kind() == SeriesKind::Counter).then_some(ring);
        }
        self.series
            .get(count_key)
            .filter(|r| r.kind() == SeriesKind::Counter)
    }

    /// `quantile_over_time`: rebuilds the bucket distribution from the
    /// per-bucket increases over the window and reuses the shared
    /// [`quantile_from_buckets`] estimator.
    pub fn quantile_over_time(&self, series: &str, q: f64, window: u64, now: u64) -> Option<f64> {
        let bounds = self.bounds.get(series)?;
        let (name, labels) = split_label_suffix(series);
        let mut cumulative: Vec<f64> = Vec::with_capacity(bounds.len());
        for bound in bounds {
            let le_key = format!("{name}:le:{}{labels}", bound_token(*bound));
            let ring = self.series.get(&le_key)?;
            cumulative.push(ring.increase(now, window).max(0.0));
        }
        let total = self
            .counter_ring(series)
            .map(|r| r.increase(now, window).max(0.0))
            .unwrap_or_else(|| cumulative.last().copied().unwrap_or(0.0));
        // Cumulative per-bound -> per-bucket counts plus trailing overflow.
        let mut counts: Vec<u64> = Vec::with_capacity(bounds.len() + 1);
        let mut prev = 0.0f64;
        for c in &cumulative {
            counts.push((c - prev).max(0.0).round() as u64);
            prev = *c;
        }
        counts.push((total - prev).max(0.0).round() as u64);
        Some(quantile_from_buckets(bounds, &counts, q))
    }

    /// Current value of a series (counter total / gauge level).
    pub fn value(&self, series: &str) -> Result<f64, QueryError> {
        let ring = self
            .lookup(series)
            .ok_or_else(|| QueryError::UnknownSeries(series.to_string()))?;
        ring.value()
            .ok_or_else(|| QueryError::UnknownSeries(series.to_string()))
    }

    /// Counter increase over the trailing window ending at the last
    /// sample tick.
    pub fn increase(&self, series: &str, window: u64) -> Result<f64, QueryError> {
        let now = self.now_or_zero();
        let ring = self.require_counter(series)?;
        Ok(ring.increase(now, window))
    }

    /// Per-tick counter rate over the trailing window.
    pub fn rate(&self, series: &str, window: u64) -> Result<f64, QueryError> {
        let now = self.now_or_zero();
        let ring = self.require_counter(series)?;
        Ok(ring.rate(now, window))
    }

    /// Raw retained points of a series (counters: per-sample increments).
    pub fn points(&self, series: &str) -> Result<Vec<Point>, QueryError> {
        let ring = self
            .lookup(series)
            .ok_or_else(|| QueryError::UnknownSeries(series.to_string()))?;
        Ok(ring.raw_points())
    }

    fn now_or_zero(&self) -> u64 {
        self.last_sample_tick.unwrap_or(0)
    }

    fn require_counter(&self, series: &str) -> Result<&SeriesRing, QueryError> {
        match self.counter_ring(series) {
            Some(ring) => Ok(ring),
            None => {
                if self.series.contains_key(series) {
                    Err(QueryError::BadRequest(format!(
                        "series {series:?} is a gauge; rate/increase need a counter"
                    )))
                } else {
                    Err(QueryError::UnknownSeries(series.to_string()))
                }
            }
        }
    }

    fn persist(&mut self) {
        let Some(storage) = &mut self.storage else {
            return;
        };
        for (name, ring) in &self.series {
            let points = ring.raw_points();
            let window = SeriesWindow {
                series: name.clone(),
                kind: ring.kind(),
                start_tick: points.first().map(|p| p.0).unwrap_or(0),
                end_tick: points.last().map(|p| p.0).unwrap_or(0),
                points,
                last_raw: ring.last_raw(),
                base: ring.base(),
            };
            match storage.windows.insert(window) {
                Ok(id) => {
                    self.stats.windows_persisted += 1;
                    let ids = storage.window_ids.entry(name.clone()).or_default();
                    ids.push(id);
                    while ids.len() > self.config.retention_windows.max(1) {
                        let oldest = ids.remove(0);
                        match storage.windows.delete(oldest) {
                            Ok(()) => self.stats.windows_deleted += 1,
                            Err(_) => self.stats.storage_errors += 1,
                        }
                    }
                }
                Err(_) => self.stats.storage_errors += 1,
            }
        }
        let state = ObsState {
            last_sample_tick: self.last_sample_tick,
            samples: self.samples,
            alerts: self
                .rules
                .iter()
                .map(|rt| (rt.rule.name.clone(), rt.state))
                .collect(),
        };
        let write = match storage.meta_id {
            Some(id) => storage.meta.update(id, state),
            None => match storage.meta.insert(state) {
                Ok(id) => {
                    storage.meta_id = Some(id);
                    Ok(())
                }
                Err(e) => Err(e),
            },
        };
        if write.is_err() {
            self.stats.storage_errors += 1;
        }
        if storage.windows.sync().is_err() || storage.meta.sync().is_err() {
            self.stats.storage_errors += 1;
        }
    }

    /// Forces a persistence pass (shutdown path).
    pub fn flush(&mut self) {
        if self.storage.is_some() {
            self.persist();
        }
    }

    /// Alert table rows for `/rest/alerts` / `imcf top` / `imcf doctor`.
    pub fn alert_rows(&self) -> Vec<AlertRow> {
        self.rules
            .iter()
            .map(|rt| AlertRow {
                name: rt.rule.name.clone(),
                expr: rt.rule.expr.render(),
                cmp: rt.rule.cmp.symbol().to_string(),
                threshold: rt.rule.threshold,
                for_ticks: rt.rule.for_ticks,
                severity: rt.rule.severity.label().to_string(),
                state: rt.state.label().to_string(),
                since: match rt.state {
                    AlertState::Pending(t) | AlertState::Firing(t) => Some(t),
                    AlertState::Inactive => None,
                },
                value: rt.last_value,
                fired_count: rt.fired_count,
            })
            .collect()
    }

    /// Number of rules currently firing.
    pub fn firing_count(&self) -> u64 {
        self.rules
            .iter()
            .filter(|rt| matches!(rt.state, AlertState::Firing(_)))
            .count() as u64
    }

    /// `GET /rest/alerts` body.
    pub fn alerts_json(&self) -> String {
        let rows = self.alert_rows();
        let body = Value::Object(vec![
            ("tick".to_string(), tick_value(self.last_sample_tick)),
            (
                "firing".to_string(),
                serde_json::to_value(&self.firing_count()),
            ),
            ("alerts".to_string(), serde_json::to_value(&rows)),
        ]);
        serde_json::to_string(&body).unwrap_or_else(|_| String::from("{}"))
    }
}

fn tick_value(tick: Option<u64>) -> Value {
    match tick {
        Some(t) => serde_json::to_value(&t),
        None => Value::Null,
    }
}

/// Splits `name{labels}` into `(name, "{labels}")` (labels part empty
/// when the series is unlabeled).
fn split_label_suffix(series: &str) -> (&str, &str) {
    match series.find('{') {
        Some(idx) => (&series[..idx], &series[idx..]),
        None => (series, ""),
    }
}

/// One `/rest/alerts` row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlertRow {
    pub name: String,
    pub expr: String,
    pub cmp: String,
    pub threshold: f64,
    pub for_ticks: u64,
    pub severity: String,
    pub state: String,
    pub since: Option<u64>,
    pub value: Option<f64>,
    pub fired_count: u64,
}

/// Why [`ObsEngine::open`] failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsOpenError {
    Rules(AlertError),
    Store(String),
}

impl fmt::Display for ObsOpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsOpenError::Rules(e) => write!(f, "invalid alert rules: {e}"),
            ObsOpenError::Store(e) => write!(f, "tsdb storage: {e}"),
        }
    }
}

impl std::error::Error for ObsOpenError {}
