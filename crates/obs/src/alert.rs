//! Declarative alert rules with a deterministic pending → firing →
//! resolved state machine.
//!
//! Rules are evaluated on the controller's **virtual clock** against the
//! in-process time-series engine, so a run produces the same alert
//! transitions at the same ticks regardless of worker count or wall-clock
//! speed. A rule breaches when its expression compares true against the
//! threshold; it must breach for `for_ticks` consecutive evaluations
//! before firing (the "pending" holdoff, Prometheus `for:` semantics).
//!
//! Rules are validated at load: an expression referencing a series whose
//! base metric is absent from the telemetry catalog is a typed error, not
//! a silently-empty query.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a rule computes each evaluation tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlertExpr {
    /// Current value of the series (gauge level or counter total).
    Value(String),
    /// Per-tick rate of a counter over the trailing window `(series, window)`.
    Rate(String, u64),
    /// Absolute counter increase over the trailing window `(series, window)`.
    Increase(String, u64),
    /// Quantile-over-time of a histogram `(series, q, window)`.
    Quantile(String, f64, u64),
}

impl AlertExpr {
    /// The series the expression reads.
    pub fn series(&self) -> &str {
        match self {
            AlertExpr::Value(s)
            | AlertExpr::Rate(s, _)
            | AlertExpr::Increase(s, _)
            | AlertExpr::Quantile(s, _, _) => s,
        }
    }

    /// The trailing window in ticks (0 for instant expressions).
    pub fn window(&self) -> u64 {
        match self {
            AlertExpr::Value(_) => 0,
            AlertExpr::Rate(_, w) | AlertExpr::Increase(_, w) | AlertExpr::Quantile(_, _, w) => *w,
        }
    }

    /// Human-readable rendering for `/rest/alerts` and `imcf top`.
    pub fn render(&self) -> String {
        match self {
            AlertExpr::Value(s) => format!("value({s})"),
            AlertExpr::Rate(s, w) => format!("rate({s}[{w}])"),
            AlertExpr::Increase(s, w) => format!("increase({s}[{w}])"),
            AlertExpr::Quantile(s, q, w) => format!("quantile({s}[{w}], {q})"),
        }
    }
}

/// Comparison between the computed value and the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl Cmp {
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// How loud the alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Info,
    Warning,
    Critical,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Unique rule name; by convention prefixed with the base metric it
    /// watches (see CONTRIBUTING on L004 and alert naming).
    pub name: String,
    pub expr: AlertExpr,
    pub cmp: Cmp,
    pub threshold: f64,
    /// Consecutive breached evaluations required before firing.
    pub for_ticks: u64,
    pub severity: Severity,
}

/// The state machine position of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    Inactive,
    /// Breaching since the contained tick, not yet held long enough.
    Pending(u64),
    /// Firing since the contained tick.
    Firing(u64),
}

impl AlertState {
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending(_) => "pending",
            AlertState::Firing(_) => "firing",
        }
    }
}

/// A state-machine edge taken during one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    ToPending,
    ToFiring,
    ToResolved,
}

impl Transition {
    /// The `to` label value recorded on `alerts.transitions`.
    pub fn label(self) -> &'static str {
        match self {
            Transition::ToPending => "pending",
            Transition::ToFiring => "firing",
            Transition::ToResolved => "resolved",
        }
    }
}

/// Advances one rule's state machine given whether the rule breaches at
/// `tick`. Pure: same inputs, same edge, on every worker layout.
pub fn step(
    state: AlertState,
    breach: bool,
    tick: u64,
    for_ticks: u64,
) -> (AlertState, Option<Transition>) {
    match (state, breach) {
        (AlertState::Inactive, false) => (AlertState::Inactive, None),
        (AlertState::Inactive, true) => {
            if for_ticks == 0 {
                (AlertState::Firing(tick), Some(Transition::ToFiring))
            } else {
                (AlertState::Pending(tick), Some(Transition::ToPending))
            }
        }
        (AlertState::Pending(_), false) => (AlertState::Inactive, Some(Transition::ToResolved)),
        (AlertState::Pending(since), true) => {
            // Held for `for_ticks` evaluations counting the first breach.
            if tick.saturating_sub(since) + 1 >= for_ticks {
                (AlertState::Firing(since), Some(Transition::ToFiring))
            } else {
                (AlertState::Pending(since), None)
            }
        }
        (AlertState::Firing(_), false) => (AlertState::Inactive, Some(Transition::ToResolved)),
        (AlertState::Firing(since), true) => (AlertState::Firing(since), None),
    }
}

/// Why a rule set was rejected at load.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertError {
    /// The rule reads a series whose base metric is not in the telemetry
    /// catalog — a typo or an uncataloged metric (see lint L004).
    UnknownSeries { rule: String, series: String },
    /// Quantile outside `(0, 1)`.
    BadQuantile { rule: String, q: f64 },
    /// Windowed expression with a zero window.
    ZeroWindow { rule: String },
    /// Two rules share a name.
    DuplicateRule { rule: String },
}

impl fmt::Display for AlertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertError::UnknownSeries { rule, series } => write!(
                f,
                "alert rule {rule:?} reads series {series:?} whose base metric is not in the \
                 telemetry catalog"
            ),
            AlertError::BadQuantile { rule, q } => {
                write!(f, "alert rule {rule:?} uses quantile {q} outside (0, 1)")
            }
            AlertError::ZeroWindow { rule } => {
                write!(
                    f,
                    "alert rule {rule:?} uses a windowed expression with window 0"
                )
            }
            AlertError::DuplicateRule { rule } => {
                write!(f, "alert rule name {rule:?} is used more than once")
            }
        }
    }
}

impl std::error::Error for AlertError {}

/// The catalog metric name underneath a series key: everything before the
/// first `{` (labels) or `:` (histogram sub-series separator).
pub fn base_metric(series: &str) -> &str {
    let end = series.find(['{', ':']).unwrap_or(series.len());
    &series[..end]
}

/// Validates a rule set against the telemetry catalog. Called by the
/// engine constructor; exposed for tools that load rules from config.
pub fn validate_rules(rules: &[AlertRule]) -> Result<(), AlertError> {
    let mut seen: Vec<&str> = Vec::with_capacity(rules.len());
    for rule in rules {
        if seen.contains(&rule.name.as_str()) {
            return Err(AlertError::DuplicateRule {
                rule: rule.name.clone(),
            });
        }
        seen.push(&rule.name);
        let series = rule.expr.series();
        let base = base_metric(series);
        if !imcf_telemetry::catalog::is_cataloged(base) {
            return Err(AlertError::UnknownSeries {
                rule: rule.name.clone(),
                series: series.to_string(),
            });
        }
        match rule.expr {
            AlertExpr::Quantile(_, q, _) if !(q > 0.0 && q < 1.0) => {
                return Err(AlertError::BadQuantile {
                    rule: rule.name.clone(),
                    q,
                });
            }
            _ => {}
        }
        match rule.expr {
            AlertExpr::Rate(_, 0) | AlertExpr::Increase(_, 0) | AlertExpr::Quantile(_, _, 0) => {
                return Err(AlertError::ZeroWindow {
                    rule: rule.name.clone(),
                });
            }
            _ => {}
        }
    }
    Ok(())
}

/// The stock rule set: the failure modes the reproduction already
/// instruments, expressed as burn-rate / threshold rules.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "breaker.open.storm".to_string(),
            expr: AlertExpr::Increase("breaker.open".to_string(), 60),
            cmp: Cmp::Gt,
            threshold: 0.0,
            for_ticks: 0,
            severity: Severity::Critical,
        },
        AlertRule {
            name: "journal.deduped.burn".to_string(),
            expr: AlertExpr::Rate("journal.deduped".to_string(), 120),
            cmp: Cmp::Gt,
            threshold: 0.5,
            for_ticks: 3,
            severity: Severity::Warning,
        },
        AlertRule {
            name: "controller.watchdog_trips.any".to_string(),
            expr: AlertExpr::Increase("controller.watchdog_trips".to_string(), 60),
            cmp: Cmp::Gt,
            threshold: 0.0,
            for_ticks: 0,
            severity: Severity::Critical,
        },
        AlertRule {
            name: "net.request_micros.p99_slo".to_string(),
            expr: AlertExpr::Quantile("net.request_micros".to_string(), 0.99, 120),
            cmp: Cmp::Gt,
            threshold: 50_000.0,
            for_ticks: 3,
            severity: Severity::Warning,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_validate() {
        validate_rules(&default_rules()).expect("stock rules reference cataloged metrics");
    }

    #[test]
    fn unknown_series_rejected() {
        let rules = vec![AlertRule {
            name: "bogus".to_string(),
            expr: AlertExpr::Value("no.such.metric".to_string()),
            cmp: Cmp::Gt,
            threshold: 0.0,
            for_ticks: 0,
            severity: Severity::Info,
        }];
        match validate_rules(&rules) {
            Err(AlertError::UnknownSeries { rule, series }) => {
                assert_eq!(rule, "bogus");
                assert_eq!(series, "no.such.metric");
            }
            other => panic!("expected UnknownSeries, got {other:?}"),
        }
    }

    #[test]
    fn base_metric_strips_labels_and_subseries() {
        assert_eq!(base_metric("breaker.open"), "breaker.open");
        assert_eq!(base_metric("api.requests{status=2xx}"), "api.requests");
        assert_eq!(
            base_metric("net.request_micros:le:100"),
            "net.request_micros"
        );
    }

    #[test]
    fn state_machine_holds_for_ticks_then_fires_and_resolves() {
        let mut state = AlertState::Inactive;
        let mut edges = Vec::new();
        for (tick, breach) in [(10, true), (11, true), (12, true), (13, false)] {
            let (next, edge) = step(state, breach, tick, 3);
            state = next;
            edges.push(edge);
        }
        assert_eq!(
            edges,
            vec![
                Some(Transition::ToPending),
                None,
                Some(Transition::ToFiring),
                Some(Transition::ToResolved),
            ]
        );
        assert_eq!(state, AlertState::Inactive);
    }

    #[test]
    fn pending_deflates_without_firing() {
        let (pending, _) = step(AlertState::Inactive, true, 5, 10);
        let (next, edge) = step(pending, false, 6, 10);
        assert_eq!(next, AlertState::Inactive);
        assert_eq!(edge, Some(Transition::ToResolved));
    }

    #[test]
    fn zero_for_ticks_fires_immediately() {
        let (next, edge) = step(AlertState::Inactive, true, 7, 0);
        assert_eq!(next, AlertState::Firing(7));
        assert_eq!(edge, Some(Transition::ToFiring));
    }
}
