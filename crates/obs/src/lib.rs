//! # imcf-obs — the observability plane
//!
//! The reproduction's point-in-time signals (metric registry, causal
//! traces, flight recorder) answer "what is happening *now*"; this crate
//! adds **history** and **judgement**: an in-process time-series engine
//! sampling the registry on the controller's virtual clock, and a
//! deterministic alert rule engine on top of it. The paper's
//! meta-control loop (monitor → decide → actuate) needs exactly this
//! monitoring feedback to close at fleet scale.
//!
//! Pieces:
//!
//! * [`series::SeriesRing`] — bounded delta-encoded history per series,
//!   with eviction-driven downsampling into a coarse ring;
//! * [`engine::ObsEngine`] — samples a [`imcf_telemetry::Registry`] each
//!   virtual tick, expands histograms into `:count`/`:sum`/`:le:<bound>`
//!   sub-series, serves range queries (`value`, `rate`, `increase`,
//!   `points`, `quantile_over_time`) and persists windows through the
//!   segmented group-commit store (`tsdb` table) with retention;
//! * [`alert`] — declarative threshold / burn-rate rules with a
//!   pending → firing → resolved state machine, validated against the
//!   telemetry catalog at load;
//! * [`query`] — the `GET /rest/query` parameter surface.
//!
//! Everything runs on the virtual clock and iterates `BTreeMap`s, so a
//! given tick sequence yields byte-identical series, alert transitions
//! and query responses regardless of worker count — the property the
//! `obs_bench` determinism test pins.

pub mod alert;
pub mod engine;
pub mod query;
pub mod series;

pub use alert::{
    default_rules, validate_rules, AlertError, AlertExpr, AlertRule, AlertState, Cmp, Severity,
};
pub use engine::{
    AlertRow, ObsConfig, ObsEngine, ObsOpenError, ObsStats, QueryError, SeriesWindow,
};
pub use query::{handle_query, parse_query, percent_decode, run_query, QueryFn, QueryParams};
pub use series::{Point, SeriesKind, SeriesRing};
