//! Per-series delta rings: bounded history with eviction-driven
//! downsampling.
//!
//! Counters are stored as per-sample **increments** (the delta between
//! consecutive cumulative readings), gauges as raw levels. Increments make
//! windowed queries a plain sum and make the ring robust to counter resets
//! (a reading below its predecessor starts a new epoch — the fresh reading
//! is taken as the increment, matching Prometheus `increase()` semantics).
//!
//! When the raw ring is full, evicted points fold into a coarse ring:
//! every `downsample_every` evictions become one aggregated block (sum of
//! increments for counters, mean level for gauges) stamped with the last
//! tick of the block. Windowed counter queries transparently extend into
//! the coarse ring when the window predates raw history.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The sampled value semantics of a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesKind {
    /// Monotonic cumulative total; the ring stores per-sample increments.
    Counter,
    /// Point-in-time level; the ring stores raw values.
    Gauge,
}

impl SeriesKind {
    /// Lowercase wire name (`counter` / `gauge`).
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One stored sample: `(virtual tick, increment-or-level)`.
pub type Point = (u64, f64);

/// A bounded, delta-encoded history for one series.
#[derive(Debug, Clone)]
pub struct SeriesRing {
    kind: SeriesKind,
    capacity: usize,
    downsample_every: usize,
    coarse_capacity: usize,
    points: VecDeque<Point>,
    /// Cumulative value at the last sample (counters only).
    last_raw: Option<f64>,
    /// Sum of every evicted increment (counters): lets `value()` stay
    /// exact after the ring wraps.
    base: f64,
    evictions: u64,
    pending: Vec<Point>,
    coarse: VecDeque<Point>,
}

impl SeriesRing {
    pub fn new(
        kind: SeriesKind,
        capacity: usize,
        downsample_every: usize,
        coarse_capacity: usize,
    ) -> SeriesRing {
        SeriesRing {
            kind,
            capacity: capacity.max(1),
            downsample_every: downsample_every.max(1),
            coarse_capacity: coarse_capacity.max(1),
            points: VecDeque::new(),
            last_raw: None,
            base: 0.0,
            evictions: 0,
            pending: Vec::new(),
            coarse: VecDeque::new(),
        }
    }

    /// Rebuilds a ring from persisted state (already delta-encoded points).
    pub fn restore(
        kind: SeriesKind,
        capacity: usize,
        downsample_every: usize,
        coarse_capacity: usize,
        points: Vec<Point>,
        last_raw: Option<f64>,
        base: f64,
    ) -> SeriesRing {
        let mut ring = SeriesRing::new(kind, capacity, downsample_every, coarse_capacity);
        for point in points.into_iter() {
            ring.points.push_back(point);
        }
        while ring.points.len() > ring.capacity {
            ring.points.pop_front();
        }
        ring.last_raw = last_raw;
        ring.base = base;
        ring
    }

    /// Records one raw sample of the underlying metric at `tick`.
    pub fn push(&mut self, tick: u64, raw: f64) {
        let stored = match self.kind {
            SeriesKind::Counter => {
                let delta = match self.last_raw {
                    Some(last) if raw >= last => raw - last,
                    // First sample or counter reset: the reading itself is
                    // the increment of the new epoch.
                    _ => raw,
                };
                self.last_raw = Some(raw);
                delta
            }
            SeriesKind::Gauge => raw,
        };
        self.points.push_back((tick, stored));
        while self.points.len() > self.capacity {
            if let Some(evicted) = self.points.pop_front() {
                self.evictions += 1;
                if self.kind == SeriesKind::Counter {
                    self.base += evicted.1;
                }
                self.pending.push(evicted);
                if self.pending.len() >= self.downsample_every {
                    self.fold_pending();
                }
            }
        }
    }

    fn fold_pending(&mut self) {
        let Some(&(last_tick, _)) = self.pending.last() else {
            return;
        };
        let value = match self.kind {
            SeriesKind::Counter => self.pending.iter().map(|p| p.1).sum(),
            SeriesKind::Gauge => {
                let sum: f64 = self.pending.iter().map(|p| p.1).sum();
                sum / self.pending.len() as f64
            }
        };
        self.coarse.push_back((last_tick, value));
        while self.coarse.len() > self.coarse_capacity {
            self.coarse.pop_front();
        }
        self.pending.clear();
    }

    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw points evicted since the ring was created.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn last_tick(&self) -> Option<u64> {
        self.points.back().map(|p| p.0)
    }

    /// Cumulative value at the last sample for counters (exact across
    /// wraps thanks to `base`), last observed level for gauges.
    pub fn value(&self) -> Option<f64> {
        match self.kind {
            SeriesKind::Counter => self
                .last_raw
                .map(|_| self.base + self.points.iter().map(|p| p.1).sum::<f64>()),
            SeriesKind::Gauge => self.points.back().map(|p| p.1),
        }
    }

    /// Total increase over the trailing `window` ticks ending at `now`
    /// (points with `tick > now - window`). Counters extend into the
    /// coarse ring when the window predates raw history.
    pub fn increase(&self, now: u64, window: u64) -> f64 {
        let from = now.saturating_sub(window);
        // Points are tick-ascending: walk newest-first and stop at the
        // window edge, so per-tick alert evaluation scales with the
        // window, not the ring capacity.
        let mut total: f64 = 0.0;
        for p in self.points.iter().rev() {
            if p.0 <= from {
                break;
            }
            total += p.1;
        }
        if self.kind == SeriesKind::Counter {
            let raw_start = self.points.front().map(|p| p.0).unwrap_or(u64::MAX);
            for p in self.coarse.iter().rev() {
                if p.0 <= from {
                    break;
                }
                if p.0 < raw_start {
                    total += p.1;
                }
            }
        }
        total
    }

    /// Per-tick rate over the trailing window: `increase / window`.
    pub fn rate(&self, now: u64, window: u64) -> f64 {
        let window = window.max(1);
        self.increase(now, window) / window as f64
    }

    /// The raw ring contents, oldest first (counter series yield
    /// per-sample increments, not cumulative totals).
    pub fn raw_points(&self) -> Vec<Point> {
        self.points.iter().copied().collect()
    }

    /// The downsampled blocks, oldest first.
    pub fn coarse_points(&self) -> Vec<Point> {
        self.coarse.iter().copied().collect()
    }

    /// Cumulative counter value at the last sample, as last pushed
    /// (used to persist delta-encoding state across restarts).
    pub fn last_raw(&self) -> Option<f64> {
        self.last_raw
    }

    /// Sum of evicted counter increments (persisted with `last_raw`).
    pub fn base(&self) -> f64 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_deltas_and_value() {
        let mut r = SeriesRing::new(SeriesKind::Counter, 8, 4, 4);
        for (tick, v) in [(1, 2.0), (2, 5.0), (3, 5.0), (4, 9.0)] {
            r.push(tick, v);
        }
        assert_eq!(r.raw_points(), vec![(1, 2.0), (2, 3.0), (3, 0.0), (4, 4.0)]);
        assert_eq!(r.value(), Some(9.0));
        assert!((r.increase(4, 2) - 4.0).abs() < 1e-9);
        assert!((r.increase(4, 100) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn counter_reset_starts_new_epoch() {
        let mut r = SeriesRing::new(SeriesKind::Counter, 8, 4, 4);
        r.push(1, 10.0);
        r.push(2, 3.0); // reset: process restarted
        assert_eq!(r.raw_points(), vec![(1, 10.0), (2, 3.0)]);
        assert_eq!(r.value(), Some(13.0));
    }

    #[test]
    fn eviction_keeps_counter_value_exact() {
        let mut r = SeriesRing::new(SeriesKind::Counter, 4, 2, 8);
        for tick in 1..=20u64 {
            r.push(tick, tick as f64); // +1 per tick
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evictions(), 16);
        assert_eq!(r.value(), Some(20.0));
        // Window spanning into coarse history still sums correctly: the
        // last 10 ticks grew the counter by 10.
        assert!((r.increase(20, 10) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_value_is_last_level_and_coarse_is_mean() {
        let mut r = SeriesRing::new(SeriesKind::Gauge, 2, 2, 8);
        for (tick, v) in [(1, 1.0), (2, 3.0), (3, 7.0), (4, 9.0)] {
            r.push(tick, v);
        }
        assert_eq!(r.value(), Some(9.0));
        assert_eq!(r.coarse_points(), vec![(2, 2.0)]);
    }

    #[test]
    fn restore_round_trips_delta_state() {
        let mut r = SeriesRing::new(SeriesKind::Counter, 8, 4, 4);
        r.push(1, 5.0);
        r.push(2, 8.0);
        let restored = SeriesRing::restore(
            SeriesKind::Counter,
            8,
            4,
            4,
            r.raw_points(),
            r.last_raw(),
            r.base(),
        );
        assert_eq!(restored.value(), Some(8.0));
        let mut restored = restored;
        restored.push(3, 10.0);
        // No double counting after restart: 8 -> 10 is +2.
        assert_eq!(restored.value(), Some(10.0));
    }
}
