//! # imcf-devices — the openHAB-like device substrate
//!
//! The paper's Local Controller (LC) is built on openHAB: *Things* are
//! physical devices reachable on the local network, *Items* are typed state
//! variables, and *Channels* link items to thing capabilities. Commands flow
//! from the controller to things either through vendor *bindings*
//! ("binding-mode") or through raw HTTP control URLs ("extended mode", e.g.
//! the Daikin `set_control_info` querystring in §II-A).
//!
//! This crate rebuilds that substrate in-process:
//!
//! * [`thing::Thing`], [`item::Item`], [`channel::ChannelUid`] — the openHAB
//!   data model;
//! * [`registry::DeviceRegistry`] — the LC's inventory with command dispatch;
//! * [`energy`] — parametric device energy models (HVAC split units,
//!   dimmable lights) used by the planner's `e_j` cost (paper Eq. 2);
//! * [`catalog`] — the deferrable-load appliances of the paper's future
//!   work (EV chargers, water heaters, white goods);
//! * [`command`] — actuation commands and their wire renderings for both
//!   binding-mode and extended-mode paths.

pub mod catalog;
pub mod channel;
pub mod command;
pub mod energy;
pub mod item;
pub mod registry;
pub mod thing;

pub use channel::ChannelUid;
pub use command::{ActuationMode, Command, CommandOutcome};
pub use energy::{DeviceEnergyModel, HvacModel, LightModel};
pub use item::{Item, ItemKind, ItemState};
pub use registry::{DeviceRegistry, RegistryError};
pub use thing::{Thing, ThingKind, ThingUid};
