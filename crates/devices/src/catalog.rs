//! Extended device catalog: the power-hungry appliances of the paper's
//! future work ("white devices, electric vehicles, heating").
//!
//! These devices are *deferrable loads*: they draw a fixed power while
//! running a job of known energy, and the interesting question is *when*
//! to run them (see `imcf_core::deferrable`). The catalog provides their
//! electrical models and job descriptions so schedulers and examples share
//! one source of truth.

use serde::{Deserialize, Serialize};

/// An EV charging circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvCharger {
    /// Charger power, kW (kWh per hour while charging).
    pub power_kw: f64,
    /// Charging efficiency (battery kWh gained per grid kWh).
    pub efficiency: f64,
}

impl EvCharger {
    /// A 3.7 kW single-phase home wallbox.
    pub fn wallbox_3_7kw() -> Self {
        EvCharger {
            power_kw: 3.7,
            efficiency: 0.9,
        }
    }

    /// An 11 kW three-phase wallbox.
    pub fn wallbox_11kw() -> Self {
        EvCharger {
            power_kw: 11.0,
            efficiency: 0.92,
        }
    }

    /// Grid energy to put `battery_kwh` into the battery.
    pub fn grid_kwh_for(&self, battery_kwh: f64) -> f64 {
        battery_kwh / self.efficiency
    }

    /// Whole hours to deliver `battery_kwh` (rounded up).
    pub fn hours_for(&self, battery_kwh: f64) -> u64 {
        (self.grid_kwh_for(battery_kwh) / self.power_kw).ceil() as u64
    }
}

/// A resistive water heater with a storage tank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaterHeater {
    /// Element power, kW.
    pub power_kw: f64,
    /// Tank volume, litres.
    pub tank_litres: f64,
}

impl WaterHeater {
    /// A typical 2 kW / 120 l household boiler.
    pub fn boiler_120l() -> Self {
        WaterHeater {
            power_kw: 2.0,
            tank_litres: 120.0,
        }
    }

    /// Energy to raise the full tank by `delta_c` degrees
    /// (4.186 kJ/kg·K ≈ 0.001163 kWh/l·K).
    pub fn kwh_to_heat(&self, delta_c: f64) -> f64 {
        self.tank_litres * 0.001163 * delta_c.max(0.0)
    }

    /// Whole hours to deliver that heat (rounded up).
    pub fn hours_to_heat(&self, delta_c: f64) -> u64 {
        (self.kwh_to_heat(delta_c) / self.power_kw).ceil() as u64
    }
}

/// A white-goods appliance cycle (dishwasher, washing machine, dryer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceCycle {
    /// Appliance name.
    pub name: String,
    /// Mean power while running, kW.
    pub power_kw: f64,
    /// Cycle length, hours.
    pub duration_hours: u64,
}

impl ApplianceCycle {
    /// A modern dishwasher eco cycle.
    pub fn dishwasher_eco() -> Self {
        ApplianceCycle {
            name: "dishwasher (eco)".into(),
            power_kw: 0.55,
            duration_hours: 2,
        }
    }

    /// A 40 °C washing-machine cycle.
    pub fn washing_machine_40c() -> Self {
        ApplianceCycle {
            name: "washing machine (40°C)".into(),
            power_kw: 0.7,
            duration_hours: 2,
        }
    }

    /// A heat-pump dryer cycle.
    pub fn dryer_heat_pump() -> Self {
        ApplianceCycle {
            name: "dryer (heat pump)".into(),
            power_kw: 0.9,
            duration_hours: 2,
        }
    }

    /// Total cycle energy, kWh.
    pub fn total_kwh(&self) -> f64 {
        self.power_kw * self.duration_hours as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_charging_arithmetic() {
        let wb = EvCharger::wallbox_3_7kw();
        // 10 kWh into the battery at 90 % efficiency ≈ 11.1 kWh from grid.
        assert!((wb.grid_kwh_for(10.0) - 11.111).abs() < 0.01);
        assert_eq!(wb.hours_for(10.0), 4); // 11.1 / 3.7 = 3.003 → 4 h
        let fast = EvCharger::wallbox_11kw();
        assert_eq!(fast.hours_for(10.0), 1);
    }

    #[test]
    fn water_heater_physics() {
        let b = WaterHeater::boiler_120l();
        // 120 l by 40 °C ≈ 5.58 kWh.
        let kwh = b.kwh_to_heat(40.0);
        assert!((kwh - 5.58).abs() < 0.02, "kwh = {kwh}");
        assert_eq!(b.hours_to_heat(40.0), 3);
        // Cooling demand is not negative energy.
        assert_eq!(b.kwh_to_heat(-10.0), 0.0);
    }

    #[test]
    fn appliance_cycles() {
        let dw = ApplianceCycle::dishwasher_eco();
        assert!((dw.total_kwh() - 1.1).abs() < 1e-9);
        let wm = ApplianceCycle::washing_machine_40c();
        let dr = ApplianceCycle::dryer_heat_pump();
        assert!(dr.total_kwh() > wm.total_kwh());
    }
}
