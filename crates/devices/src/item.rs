//! Items: typed state variables linked to channels.
//!
//! The paper's example declares
//! `Switch DaikinACUnit_Power` and `Number:Temperature DaikinACUnit_SetPoint`
//! linked to the Daikin thing's `power` and `settemp` channels. We mirror
//! that model: an [`Item`] has a name, a kind, a current [`ItemState`] and an
//! optional channel link.

use crate::channel::ChannelUid;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The openHAB item kinds used by IMCF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemKind {
    /// On/off switch.
    Switch,
    /// Numeric quantity (temperature, energy, …).
    Number,
    /// 0–100 percentage (light level).
    Dimmer,
    /// Open/closed contact.
    Contact,
}

/// The current state of an item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ItemState {
    /// State not yet initialized (openHAB's `NULL`).
    Undefined,
    /// Switch state.
    OnOff(bool),
    /// Numeric value.
    Decimal(f64),
    /// Percent value clamped to 0–100.
    Percent(f64),
    /// Contact state (true = open).
    OpenClosed(bool),
}

impl ItemState {
    /// Numeric view of a state, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ItemState::Decimal(v) | ItemState::Percent(v) => Some(*v),
            ItemState::OnOff(b) | ItemState::OpenClosed(b) => Some(if *b { 1.0 } else { 0.0 }),
            ItemState::Undefined => None,
        }
    }
}

impl fmt::Display for ItemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemState::Undefined => write!(f, "NULL"),
            ItemState::OnOff(true) => write!(f, "ON"),
            ItemState::OnOff(false) => write!(f, "OFF"),
            ItemState::Decimal(v) => write!(f, "{v}"),
            ItemState::Percent(v) => write!(f, "{v} %"),
            ItemState::OpenClosed(true) => write!(f, "OPEN"),
            ItemState::OpenClosed(false) => write!(f, "CLOSED"),
        }
    }
}

/// A typed state variable, optionally linked to a thing channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Unique item name, e.g. `DaikinACUnit_SetPoint`.
    pub name: String,
    /// The item kind.
    pub kind: ItemKind,
    /// Current state.
    pub state: ItemState,
    /// Channel this item is linked to, if any.
    pub channel: Option<ChannelUid>,
}

/// Errors applying a state to an item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemError {
    /// The state's type does not match the item kind.
    KindMismatch {
        /// The item's kind.
        kind: ItemKind,
        /// Description of the offered state.
        offered: &'static str,
    },
}

impl fmt::Display for ItemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItemError::KindMismatch { kind, offered } => {
                write!(f, "cannot apply {offered} state to {kind:?} item")
            }
        }
    }
}

impl std::error::Error for ItemError {}

impl Item {
    /// Creates an item in the `Undefined` state.
    pub fn new(name: &str, kind: ItemKind) -> Self {
        Item {
            name: name.to_string(),
            kind,
            state: ItemState::Undefined,
            channel: None,
        }
    }

    /// Links the item to a channel (builder style).
    pub fn linked_to(mut self, channel: ChannelUid) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Applies a new state, enforcing kind compatibility and clamping
    /// percents into 0–100.
    pub fn apply(&mut self, state: ItemState) -> Result<(), ItemError> {
        let compatible = matches!(
            (self.kind, &state),
            (ItemKind::Switch, ItemState::OnOff(_))
                | (ItemKind::Number, ItemState::Decimal(_))
                | (ItemKind::Dimmer, ItemState::Percent(_))
                | (ItemKind::Contact, ItemState::OpenClosed(_))
        );
        if !compatible {
            let offered = match state {
                ItemState::Undefined => "NULL",
                ItemState::OnOff(_) => "OnOff",
                ItemState::Decimal(_) => "Decimal",
                ItemState::Percent(_) => "Percent",
                ItemState::OpenClosed(_) => "OpenClosed",
            };
            return Err(ItemError::KindMismatch {
                kind: self.kind,
                offered,
            });
        }
        self.state = match state {
            ItemState::Percent(v) => ItemState::Percent(v.clamp(0.0, 100.0)),
            other => other,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thing::ThingUid;

    #[test]
    fn paper_items_construct() {
        let thing = ThingUid::new("daikin", "ac_unit", "living_room_ac");
        let power = Item::new("DaikinACUnit_Power", ItemKind::Switch)
            .linked_to(ChannelUid::new(thing.clone(), "power"));
        let setpoint = Item::new("DaikinACUnit_SetPoint", ItemKind::Number)
            .linked_to(ChannelUid::new(thing, "settemp"));
        assert_eq!(power.state, ItemState::Undefined);
        assert_eq!(setpoint.channel.as_ref().unwrap().channel, "settemp");
    }

    #[test]
    fn apply_enforces_kinds() {
        let mut sw = Item::new("sw", ItemKind::Switch);
        assert!(sw.apply(ItemState::OnOff(true)).is_ok());
        assert_eq!(sw.state, ItemState::OnOff(true));
        assert!(sw.apply(ItemState::Decimal(5.0)).is_err());
        // State unchanged after a rejected apply.
        assert_eq!(sw.state, ItemState::OnOff(true));
    }

    #[test]
    fn percent_clamps() {
        let mut d = Item::new("d", ItemKind::Dimmer);
        d.apply(ItemState::Percent(150.0)).unwrap();
        assert_eq!(d.state, ItemState::Percent(100.0));
        d.apply(ItemState::Percent(-3.0)).unwrap();
        assert_eq!(d.state, ItemState::Percent(0.0));
    }

    #[test]
    fn state_numeric_views() {
        assert_eq!(ItemState::Decimal(21.5).as_f64(), Some(21.5));
        assert_eq!(ItemState::OnOff(true).as_f64(), Some(1.0));
        assert_eq!(ItemState::OpenClosed(false).as_f64(), Some(0.0));
        assert_eq!(ItemState::Undefined.as_f64(), None);
    }

    #[test]
    fn state_display() {
        assert_eq!(ItemState::OnOff(true).to_string(), "ON");
        assert_eq!(ItemState::Percent(40.0).to_string(), "40 %");
        assert_eq!(ItemState::OpenClosed(true).to_string(), "OPEN");
        assert_eq!(ItemState::Undefined.to_string(), "NULL");
    }
}
