//! Channels: typed capabilities of a thing that items link to.
//!
//! openHAB channel UIDs extend thing UIDs with a capability segment, e.g.
//! `daikin:ac_unit:living_room_ac:settemp` (the paper's `daikin.items`
//! snippet links a `Number:Temperature` item to precisely this channel).

use crate::thing::ThingUid;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A channel UID: a [`ThingUid`] plus a capability segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelUid {
    /// The thing the channel belongs to.
    pub thing: ThingUid,
    /// Capability segment, e.g. `power`, `settemp`, `brightness`.
    pub channel: String,
}

impl ChannelUid {
    /// Creates a channel UID.
    pub fn new(thing: ThingUid, channel: &str) -> Self {
        ChannelUid {
            thing,
            channel: channel.to_string(),
        }
    }

    /// Parses a `binding:type:id:channel` string.
    pub fn parse(s: &str) -> Option<ChannelUid> {
        let (thing_part, channel) = s.rsplit_once(':')?;
        if channel.is_empty() {
            return None;
        }
        Some(ChannelUid::new(ThingUid::parse(thing_part)?, channel))
    }
}

impl fmt::Display for ChannelUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.thing, self.channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_channel() {
        let c = ChannelUid::parse("daikin:ac_unit:living_room_ac:settemp").unwrap();
        assert_eq!(c.thing.to_string(), "daikin:ac_unit:living_room_ac");
        assert_eq!(c.channel, "settemp");
        assert_eq!(c.to_string(), "daikin:ac_unit:living_room_ac:settemp");
    }

    #[test]
    fn rejects_short_uids() {
        assert!(ChannelUid::parse("a:b:c").is_none());
        assert!(ChannelUid::parse("a:b:c:").is_none());
        assert!(ChannelUid::parse("").is_none());
    }
}
