//! Actuation commands and their wire renderings.
//!
//! The paper's IMCF reaches devices two ways (§II-A): through openHAB
//! bindings (*binding-mode*, the default) or by issuing raw vendor control
//! URLs (*extended mode*, e.g. Daikin's
//! `http://192.168.0.5/aircon/set_control_info?pow=1&mode=3&stemp=25&shum=0`).
//! A [`Command`] captures the intent; [`Command::render`] produces the exact
//! wire form for either mode so the firewall and tests can inspect traffic.

use crate::channel::ChannelUid;
use crate::thing::Thing;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a command travels from the controller to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ActuationMode {
    /// Via an openHAB binding channel (default).
    #[default]
    Binding,
    /// Via a raw vendor HTTP control URL.
    Extended,
}

/// The payload of an actuation command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommandPayload {
    /// Power the device on or off.
    Power(bool),
    /// Set a thermostat setpoint (°C). `cooling` selects the HVAC mode.
    SetTemperature {
        /// Target temperature in °C.
        celsius: f64,
        /// True for cooling mode, false for heating.
        cooling: bool,
    },
    /// Set a light level (0–100).
    SetLevel(f64),
}

/// An actuation command addressed to a thing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Destination channel.
    pub channel: ChannelUid,
    /// What to do.
    pub payload: CommandPayload,
    /// Transport mode.
    pub mode: ActuationMode,
}

impl Command {
    /// Creates a binding-mode command.
    pub fn binding(channel: ChannelUid, payload: CommandPayload) -> Self {
        Command {
            channel,
            payload,
            mode: ActuationMode::Binding,
        }
    }

    /// Creates an extended-mode command.
    pub fn extended(channel: ChannelUid, payload: CommandPayload) -> Self {
        Command {
            channel,
            payload,
            mode: ActuationMode::Extended,
        }
    }

    /// Renders the command's wire form against the destination thing.
    ///
    /// Binding mode renders the openHAB-style `item <- value` channel write;
    /// extended mode renders a vendor HTTP URL in the Daikin dialect used by
    /// the paper.
    pub fn render(&self, thing: &Thing) -> String {
        match self.mode {
            ActuationMode::Binding => match self.payload {
                CommandPayload::Power(on) => {
                    format!("{} <- {}", self.channel, if on { "ON" } else { "OFF" })
                }
                CommandPayload::SetTemperature { celsius, .. } => {
                    format!("{} <- {celsius}", self.channel)
                }
                CommandPayload::SetLevel(level) => format!("{} <- {level}", self.channel),
            },
            ActuationMode::Extended => match self.payload {
                CommandPayload::Power(on) => format!(
                    "http://{}/aircon/set_control_info?pow={}",
                    thing.host,
                    if on { 1 } else { 0 }
                ),
                CommandPayload::SetTemperature { celsius, cooling } => format!(
                    "http://{}/aircon/set_control_info?pow=1&mode={}&stemp={}&shum=0",
                    thing.host,
                    if cooling { 3 } else { 4 },
                    celsius
                ),
                CommandPayload::SetLevel(level) => {
                    format!("http://{}/light/set_level?brightness={level}", thing.host)
                }
            },
        }
    }
}

/// The result of dispatching a command through the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandOutcome {
    /// Delivered to the device; carries the rendered wire form.
    Delivered(String),
    /// Dropped by the meta-control firewall.
    Blocked,
    /// The destination thing is offline.
    Offline,
    /// Lost or rejected in flight (dropped on the wire, wedged actuator,
    /// injected fault). Carries the failure reason; the device state is
    /// left untouched.
    Failed {
        /// Why delivery failed (e.g. `cmd_drop`, `cmd_stuck`).
        reason: String,
    },
}

impl fmt::Display for CommandOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandOutcome::Delivered(wire) => write!(f, "delivered: {wire}"),
            CommandOutcome::Blocked => write!(f, "blocked by firewall"),
            CommandOutcome::Offline => write!(f, "thing offline"),
            CommandOutcome::Failed { reason } => write!(f, "delivery failed: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thing::ThingUid;

    fn daikin_channel(channel: &str) -> ChannelUid {
        ChannelUid::new(
            ThingUid::new("daikin", "ac_unit", "living_room_ac"),
            channel,
        )
    }

    #[test]
    fn extended_mode_renders_paper_url() {
        // The paper's example: cool mode, 25 degrees, against 192.168.0.5.
        let cmd = Command::extended(
            daikin_channel("settemp"),
            CommandPayload::SetTemperature {
                celsius: 25.0,
                cooling: true,
            },
        );
        assert_eq!(
            cmd.render(&Thing::daikin_example()),
            "http://192.168.0.5/aircon/set_control_info?pow=1&mode=3&stemp=25&shum=0"
        );
    }

    #[test]
    fn extended_heating_mode_uses_mode_4() {
        let cmd = Command::extended(
            daikin_channel("settemp"),
            CommandPayload::SetTemperature {
                celsius: 22.0,
                cooling: false,
            },
        );
        assert!(cmd.render(&Thing::daikin_example()).contains("mode=4"));
    }

    #[test]
    fn binding_mode_renders_channel_write() {
        let cmd = Command::binding(daikin_channel("power"), CommandPayload::Power(true));
        assert_eq!(
            cmd.render(&Thing::daikin_example()),
            "daikin:ac_unit:living_room_ac:power <- ON"
        );
    }

    #[test]
    fn binding_setpoint_write() {
        let cmd = Command::binding(
            daikin_channel("settemp"),
            CommandPayload::SetTemperature {
                celsius: 21.0,
                cooling: false,
            },
        );
        assert_eq!(
            cmd.render(&Thing::daikin_example()),
            "daikin:ac_unit:living_room_ac:settemp <- 21"
        );
    }

    #[test]
    fn power_off_url() {
        let cmd = Command::extended(daikin_channel("power"), CommandPayload::Power(false));
        assert_eq!(
            cmd.render(&Thing::daikin_example()),
            "http://192.168.0.5/aircon/set_control_info?pow=0"
        );
    }

    #[test]
    fn outcome_display() {
        assert_eq!(CommandOutcome::Blocked.to_string(), "blocked by firewall");
        assert_eq!(CommandOutcome::Offline.to_string(), "thing offline");
        assert_eq!(
            CommandOutcome::Failed {
                reason: "cmd_drop".into()
            }
            .to_string(),
            "delivery failed: cmd_drop"
        );
    }
}
