//! Things: the physical devices on the smart space's local network.
//!
//! openHAB identifies a thing by a hierarchical UID such as
//! `daikin:ac_unit:living_room_ac`. A thing additionally carries the host
//! address the controller (or the firewall) uses to reach it — the paper's
//! extended mode sends HTTP requests to `192.168.0.5`, and its firewall mode
//! DROPs traffic to that address with `iptables`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hierarchical thing UID: `binding:type:id` (openHAB convention).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThingUid {
    /// Binding namespace, e.g. `daikin`.
    pub binding: String,
    /// Thing type within the binding, e.g. `ac_unit`.
    pub type_id: String,
    /// Instance id, e.g. `living_room_ac`.
    pub id: String,
}

impl ThingUid {
    /// Creates a UID from its three segments.
    pub fn new(binding: &str, type_id: &str, id: &str) -> Self {
        ThingUid {
            binding: binding.to_string(),
            type_id: type_id.to_string(),
            id: id.to_string(),
        }
    }

    /// Parses a `binding:type:id` string.
    pub fn parse(s: &str) -> Option<ThingUid> {
        let mut parts = s.split(':');
        let binding = parts.next()?;
        let type_id = parts.next()?;
        let id = parts.next()?;
        if parts.next().is_some() || binding.is_empty() || type_id.is_empty() || id.is_empty() {
            return None;
        }
        Some(ThingUid::new(binding, type_id, id))
    }
}

impl fmt::Display for ThingUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.binding, self.type_id, self.id)
    }
}

/// What kind of physical device a thing is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThingKind {
    /// Heating/cooling split unit with a thermostat.
    HvacUnit,
    /// Dimmable light fixture.
    DimmableLight,
    /// Door/window contact sensor.
    ContactSensor,
    /// Temperature sensor.
    TemperatureSensor,
    /// Illuminance sensor.
    LightSensor,
    /// Energy sub-meter.
    SubMeter,
}

impl ThingKind {
    /// Whether the thing can be actuated (vs. sensors which only report).
    pub fn is_actuator(&self) -> bool {
        matches!(self, ThingKind::HvacUnit | ThingKind::DimmableLight)
    }
}

/// A device on the local network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thing {
    /// Unique identifier.
    pub uid: ThingUid,
    /// Human-readable label.
    pub label: String,
    /// Device kind.
    pub kind: ThingKind,
    /// Host address on the local network (e.g. `192.168.0.5`).
    pub host: String,
    /// The zone/room the device serves (used by the building model).
    pub zone: String,
    /// Whether the device is currently reachable.
    pub online: bool,
}

impl Thing {
    /// Creates an online thing.
    pub fn new(uid: ThingUid, label: &str, kind: ThingKind, host: &str, zone: &str) -> Self {
        Thing {
            uid,
            label: label.to_string(),
            kind,
            host: host.to_string(),
            zone: zone.to_string(),
            online: true,
        }
    }

    /// The paper's running example: a Daikin split unit at 192.168.0.5.
    pub fn daikin_example() -> Thing {
        Thing::new(
            ThingUid::new("daikin", "ac_unit", "living_room_ac"),
            "Living-room A/C",
            ThingKind::HvacUnit,
            "192.168.0.5",
            "living_room",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_parses_and_displays() {
        let uid = ThingUid::parse("daikin:ac_unit:living_room_ac").unwrap();
        assert_eq!(uid, ThingUid::new("daikin", "ac_unit", "living_room_ac"));
        assert_eq!(uid.to_string(), "daikin:ac_unit:living_room_ac");
    }

    #[test]
    fn malformed_uids_rejected() {
        assert!(ThingUid::parse("only:two").is_none());
        assert!(ThingUid::parse("a:b:c:d").is_none());
        assert!(ThingUid::parse("::empty").is_none());
        assert!(ThingUid::parse("").is_none());
    }

    #[test]
    fn actuator_classification() {
        assert!(ThingKind::HvacUnit.is_actuator());
        assert!(ThingKind::DimmableLight.is_actuator());
        assert!(!ThingKind::ContactSensor.is_actuator());
        assert!(!ThingKind::TemperatureSensor.is_actuator());
        assert!(!ThingKind::SubMeter.is_actuator());
    }

    #[test]
    fn daikin_example_matches_paper() {
        let t = Thing::daikin_example();
        assert_eq!(t.host, "192.168.0.5");
        assert_eq!(t.uid.to_string(), "daikin:ac_unit:living_room_ac");
        assert!(t.online);
    }
}
