//! The device registry: the Local Controller's inventory.
//!
//! A [`DeviceRegistry`] tracks things and items, maintains channel links and
//! dispatches [`Command`]s. Dispatch consults an optional *egress filter* —
//! the hook the meta-control firewall installs to DROP traffic to designated
//! devices, mirroring the paper's
//! `iptables -A OUTPUT -s 192.168.0.5 -j DROP` configuration.

use crate::channel::ChannelUid;
use crate::command::{Command, CommandOutcome, CommandPayload};
use crate::item::{Item, ItemState};
use crate::thing::{Thing, ThingUid};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A thing with this UID is already registered.
    DuplicateThing(ThingUid),
    /// An item with this name is already registered.
    DuplicateItem(String),
    /// No thing with this UID exists.
    UnknownThing(ThingUid),
    /// No item with this name exists.
    UnknownItem(String),
    /// The command's channel points at a thing that is not registered.
    UnknownChannelThing(ChannelUid),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateThing(uid) => write!(f, "thing `{uid}` already registered"),
            RegistryError::DuplicateItem(name) => write!(f, "item `{name}` already registered"),
            RegistryError::UnknownThing(uid) => write!(f, "unknown thing `{uid}`"),
            RegistryError::UnknownItem(name) => write!(f, "unknown item `{name}`"),
            RegistryError::UnknownChannelThing(c) => {
                write!(f, "channel `{c}` points at an unregistered thing")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Egress filter verdict for a command about to leave the controller.
pub type EgressFilter = dyn Fn(&Thing, &Command) -> bool + Send + Sync;

/// Fault injector consulted after the egress filter: `Some(reason)` fails
/// the delivery with [`CommandOutcome::Failed`]. Installed by the chaos
/// plane; the registry itself knows nothing about fault *schedules*.
pub type FaultInjector = dyn Fn(&Thing, &Command) -> Option<String> + Send + Sync;

/// The Local Controller's device inventory.
///
/// Interior mutability (`parking_lot::RwLock`) lets the controller share one
/// registry between the scheduler thread, the firewall and user-facing
/// query paths, mirroring openHAB's shared item registry.
#[derive(Clone, Default)]
pub struct DeviceRegistry {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Default)]
struct Inner {
    things: BTreeMap<ThingUid, Thing>,
    items: BTreeMap<String, Item>,
    egress: Option<Arc<EgressFilter>>,
    faults: Option<Arc<FaultInjector>>,
    delivered: u64,
    blocked: u64,
    failed: u64,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a thing.
    pub fn add_thing(&self, thing: Thing) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if inner.things.contains_key(&thing.uid) {
            return Err(RegistryError::DuplicateThing(thing.uid));
        }
        inner.things.insert(thing.uid.clone(), thing);
        Ok(())
    }

    /// Registers an item.
    pub fn add_item(&self, item: Item) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if inner.items.contains_key(&item.name) {
            return Err(RegistryError::DuplicateItem(item.name));
        }
        inner.items.insert(item.name.clone(), item);
        Ok(())
    }

    /// Looks up a thing by UID.
    pub fn thing(&self, uid: &ThingUid) -> Option<Thing> {
        self.inner.read().things.get(uid).cloned()
    }

    /// Looks up an item by name.
    pub fn item(&self, name: &str) -> Option<Item> {
        self.inner.read().items.get(name).cloned()
    }

    /// All thing UIDs, sorted.
    pub fn thing_uids(&self) -> Vec<ThingUid> {
        self.inner.read().things.keys().cloned().collect()
    }

    /// All item names, sorted.
    pub fn item_names(&self) -> Vec<String> {
        self.inner.read().items.keys().cloned().collect()
    }

    /// Number of registered things.
    pub fn thing_count(&self) -> usize {
        self.inner.read().things.len()
    }

    /// Marks a thing online/offline.
    pub fn set_online(&self, uid: &ThingUid, online: bool) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let thing = inner
            .things
            .get_mut(uid)
            .ok_or_else(|| RegistryError::UnknownThing(uid.clone()))?;
        thing.online = online;
        Ok(())
    }

    /// Updates an item's state (e.g. from a sensor reading).
    pub fn update_item(&self, name: &str, state: ItemState) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        let item = inner
            .items
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownItem(name.to_string()))?;
        item.apply(state)
            .map_err(|_| RegistryError::UnknownItem(name.to_string()))?;
        Ok(())
    }

    /// Installs the firewall's egress filter. Commands for which the filter
    /// returns `false` are dropped with [`CommandOutcome::Blocked`].
    pub fn set_egress_filter<F>(&self, filter: F)
    where
        F: Fn(&Thing, &Command) -> bool + Send + Sync + 'static,
    {
        self.inner.write().egress = Some(Arc::new(filter));
    }

    /// Removes the egress filter.
    pub fn clear_egress_filter(&self) {
        self.inner.write().egress = None;
    }

    /// Installs a fault injector. It runs *after* the egress filter (a
    /// firewall DROP wins over an in-flight fault); returning
    /// `Some(reason)` fails the delivery with [`CommandOutcome::Failed`]
    /// and leaves item state untouched.
    pub fn set_fault_injector<F>(&self, injector: F)
    where
        F: Fn(&Thing, &Command) -> Option<String> + Send + Sync + 'static,
    {
        self.inner.write().faults = Some(Arc::new(injector));
    }

    /// Removes the fault injector.
    pub fn clear_fault_injector(&self) {
        self.inner.write().faults = None;
    }

    /// Dispatches a command: resolves the destination thing, consults the
    /// egress filter, renders the wire form and reflects the new state into
    /// linked items.
    pub fn dispatch(&self, cmd: &Command) -> Result<CommandOutcome, RegistryError> {
        let (filter, injector, thing) = {
            let inner = self.inner.read();
            let thing = inner
                .things
                .get(&cmd.channel.thing)
                .ok_or_else(|| RegistryError::UnknownChannelThing(cmd.channel.clone()))?;
            if !thing.online {
                return Ok(CommandOutcome::Offline);
            }
            (inner.egress.clone(), inner.faults.clone(), thing.clone())
        };
        if let Some(f) = filter {
            if !f(&thing, cmd) {
                self.inner.write().blocked += 1;
                return Ok(CommandOutcome::Blocked);
            }
        }
        if let Some(inject) = injector {
            if let Some(reason) = inject(&thing, cmd) {
                self.inner.write().failed += 1;
                return Ok(CommandOutcome::Failed { reason });
            }
        }
        let mut inner = self.inner.write();
        let thing = inner
            .things
            .get(&cmd.channel.thing)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownChannelThing(cmd.channel.clone()))?;
        let wire = cmd.render(&thing);
        // Reflect the command into every item linked to the channel, like
        // openHAB's autoupdate.
        let new_state = match cmd.payload {
            CommandPayload::Power(on) => ItemState::OnOff(on),
            CommandPayload::SetTemperature { celsius, .. } => ItemState::Decimal(celsius),
            CommandPayload::SetLevel(level) => ItemState::Percent(level),
        };
        for item in inner.items.values_mut() {
            if item.channel.as_ref() == Some(&cmd.channel) {
                let _ = item.apply(new_state);
            }
        }
        inner.delivered += 1;
        Ok(CommandOutcome::Delivered(wire))
    }

    /// Applies an already-acknowledged command during journal replay:
    /// reflects the payload into linked items and counts the delivery,
    /// bypassing the egress filter and the fault injector. The command was
    /// delivered in a previous life of this process — replay must neither
    /// re-ask the firewall nor re-draw faults nor re-actuate the device,
    /// only bring the twin back to the acknowledged state.
    pub fn apply_replayed(&self, cmd: &Command) -> Result<(), RegistryError> {
        let mut inner = self.inner.write();
        if !inner.things.contains_key(&cmd.channel.thing) {
            return Err(RegistryError::UnknownChannelThing(cmd.channel.clone()));
        }
        let new_state = match cmd.payload {
            CommandPayload::Power(on) => ItemState::OnOff(on),
            CommandPayload::SetTemperature { celsius, .. } => ItemState::Decimal(celsius),
            CommandPayload::SetLevel(level) => ItemState::Percent(level),
        };
        for item in inner.items.values_mut() {
            if item.channel.as_ref() == Some(&cmd.channel) {
                let _ = item.apply(new_state);
            }
        }
        inner.delivered += 1;
        Ok(())
    }

    /// `(delivered, blocked)` dispatch counters.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.read();
        (inner.delivered, inner.blocked)
    }

    /// Number of dispatches failed by the fault injector.
    pub fn failed_count(&self) -> u64 {
        self.inner.read().failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemKind;
    use crate::thing::ThingKind;

    fn setup() -> (DeviceRegistry, ChannelUid) {
        let reg = DeviceRegistry::new();
        reg.add_thing(Thing::daikin_example()).unwrap();
        let ch = ChannelUid::new(
            ThingUid::new("daikin", "ac_unit", "living_room_ac"),
            "settemp",
        );
        reg.add_item(Item::new("DaikinACUnit_SetPoint", ItemKind::Number).linked_to(ch.clone()))
            .unwrap();
        (reg, ch)
    }

    #[test]
    fn dispatch_updates_linked_item() {
        let (reg, ch) = setup();
        let cmd = Command::binding(
            ch,
            CommandPayload::SetTemperature {
                celsius: 25.0,
                cooling: false,
            },
        );
        let out = reg.dispatch(&cmd).unwrap();
        assert!(matches!(out, CommandOutcome::Delivered(_)));
        assert_eq!(
            reg.item("DaikinACUnit_SetPoint").unwrap().state,
            ItemState::Decimal(25.0)
        );
        assert_eq!(reg.counters(), (1, 0));
    }

    #[test]
    fn egress_filter_blocks_like_iptables() {
        let (reg, ch) = setup();
        // DROP all traffic to 192.168.0.5, like the paper's iptables rule.
        reg.set_egress_filter(|thing, _| thing.host != "192.168.0.5");
        let cmd = Command::binding(ch, CommandPayload::Power(true));
        assert_eq!(reg.dispatch(&cmd).unwrap(), CommandOutcome::Blocked);
        assert_eq!(reg.counters(), (0, 1));
        // Item state untouched.
        assert_eq!(
            reg.item("DaikinACUnit_SetPoint").unwrap().state,
            ItemState::Undefined
        );
        reg.clear_egress_filter();
        assert!(matches!(
            reg.dispatch(&cmd).unwrap(),
            CommandOutcome::Delivered(_)
        ));
    }

    #[test]
    fn fault_injector_fails_delivery_without_touching_state() {
        let (reg, ch) = setup();
        reg.set_fault_injector(|thing, _| {
            (thing.host == "192.168.0.5").then(|| "cmd_drop".to_string())
        });
        let cmd = Command::binding(
            ch,
            CommandPayload::SetTemperature {
                celsius: 24.0,
                cooling: true,
            },
        );
        assert_eq!(
            reg.dispatch(&cmd).unwrap(),
            CommandOutcome::Failed {
                reason: "cmd_drop".into()
            }
        );
        // Neither delivered nor blocked; the failure has its own counter.
        assert_eq!(reg.counters(), (0, 0));
        assert_eq!(reg.failed_count(), 1);
        assert_eq!(
            reg.item("DaikinACUnit_SetPoint").unwrap().state,
            ItemState::Undefined
        );
        reg.clear_fault_injector();
        assert!(matches!(
            reg.dispatch(&cmd).unwrap(),
            CommandOutcome::Delivered(_)
        ));
        assert_eq!(reg.failed_count(), 1);
    }

    #[test]
    fn replay_apply_bypasses_egress_and_faults() {
        let (reg, ch) = setup();
        // Both hooks would stop a live dispatch cold…
        reg.set_egress_filter(|_, _| false);
        reg.set_fault_injector(|_, _| Some("cmd_drop".into()));
        let cmd = Command::binding(
            ch.clone(),
            CommandPayload::SetTemperature {
                celsius: 21.5,
                cooling: true,
            },
        );
        assert_eq!(reg.dispatch(&cmd).unwrap(), CommandOutcome::Blocked);
        // …but replay of an acknowledged command lands regardless.
        reg.apply_replayed(&cmd).unwrap();
        assert_eq!(
            reg.item("DaikinACUnit_SetPoint").unwrap().state,
            ItemState::Decimal(21.5)
        );
        assert_eq!(reg.counters(), (1, 1));
        assert_eq!(reg.failed_count(), 0);
        // Unknown things still error.
        let ghost = Command::binding(
            ChannelUid::new(ThingUid::new("no", "such", "thing"), "settemp"),
            CommandPayload::Power(true),
        );
        assert!(matches!(
            reg.apply_replayed(&ghost),
            Err(RegistryError::UnknownChannelThing(_))
        ));
    }

    #[test]
    fn firewall_drop_wins_over_fault_injection() {
        let (reg, ch) = setup();
        reg.set_egress_filter(|_, _| false);
        reg.set_fault_injector(|_, _| Some("cmd_drop".into()));
        let cmd = Command::binding(ch, CommandPayload::Power(true));
        assert_eq!(reg.dispatch(&cmd).unwrap(), CommandOutcome::Blocked);
        assert_eq!(reg.failed_count(), 0);
    }

    #[test]
    fn offline_things_bounce_commands() {
        let (reg, ch) = setup();
        reg.set_online(&ch.thing, false).unwrap();
        let cmd = Command::binding(ch, CommandPayload::Power(true));
        assert_eq!(reg.dispatch(&cmd).unwrap(), CommandOutcome::Offline);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (reg, _) = setup();
        assert_eq!(
            reg.add_thing(Thing::daikin_example()),
            Err(RegistryError::DuplicateThing(ThingUid::new(
                "daikin",
                "ac_unit",
                "living_room_ac"
            )))
        );
        assert!(matches!(
            reg.add_item(Item::new("DaikinACUnit_SetPoint", ItemKind::Number)),
            Err(RegistryError::DuplicateItem(_))
        ));
    }

    #[test]
    fn unknown_channel_is_an_error() {
        let reg = DeviceRegistry::new();
        let ch = ChannelUid::parse("hue:bulb:kitchen:brightness").unwrap();
        let cmd = Command::binding(ch, CommandPayload::SetLevel(40.0));
        assert!(matches!(
            reg.dispatch(&cmd),
            Err(RegistryError::UnknownChannelThing(_))
        ));
    }

    #[test]
    fn sensor_updates_flow_through_items() {
        let reg = DeviceRegistry::new();
        reg.add_thing(Thing::new(
            ThingUid::new("sim", "sensor", "temp1"),
            "Temp sensor",
            ThingKind::TemperatureSensor,
            "192.168.0.20",
            "bedroom",
        ))
        .unwrap();
        reg.add_item(Item::new("Bedroom_Temp", ItemKind::Number))
            .unwrap();
        reg.update_item("Bedroom_Temp", ItemState::Decimal(19.5))
            .unwrap();
        assert_eq!(
            reg.item("Bedroom_Temp").unwrap().state,
            ItemState::Decimal(19.5)
        );
        assert!(reg.update_item("Nope", ItemState::Decimal(1.0)).is_err());
    }

    #[test]
    fn registry_is_cheaply_cloneable_and_shared() {
        let (reg, ch) = setup();
        let reg2 = reg.clone();
        let cmd = Command::binding(
            ch,
            CommandPayload::SetTemperature {
                celsius: 20.0,
                cooling: false,
            },
        );
        reg2.dispatch(&cmd).unwrap();
        // The clone shares state with the original.
        assert_eq!(reg.counters(), (1, 0));
        assert_eq!(reg.thing_count(), 1);
        assert_eq!(reg.item_names(), vec!["DaikinACUnit_SetPoint".to_string()]);
        assert_eq!(reg.thing_uids().len(), 1);
    }
}
