//! Parametric device energy models.
//!
//! The planner's energy objective (paper Eq. 2) needs `e_j`: the hourly
//! energy a device consumes when executing a meta-rule's action. We model
//! the two actuated device families of the evaluation:
//!
//! * **HVAC split units** — consumption grows with the gap between the
//!   setpoint and the ambient temperature (a linearized heat-pump model with
//!   a standby floor and a rated ceiling). Holding 25 °C against a 10 °C
//!   ambient costs far more than holding it against 22 °C, which is exactly
//!   the lever the Energy Planner exploits (drop rules whose gap — and hence
//!   cost — is large relative to their convenience value).
//! * **Dimmable lights** — consumption is proportional to the level.
//!
//! Constants are calibrated so a flat running the paper's Table II greedily
//! (the MR baseline) lands near the paper's ≈14.5 MWh over three years; see
//! DESIGN.md §5.

use serde::{Deserialize, Serialize};

/// Hourly energy cost of actuating a device toward a target value under a
/// given ambient value.
pub trait DeviceEnergyModel {
    /// Energy in kWh for holding `target` for one hour while the ambient
    /// (unactuated) value is `ambient`.
    fn hourly_kwh(&self, target: f64, ambient: f64) -> f64;
}

/// A linearized heat-pump model for a split unit.
///
/// Real split units holding a setpoint cycle the compressor: a substantial
/// part of the hourly draw is duty-cycle overhead (fan, electronics,
/// compressor starts) that is only weakly gap-dependent, plus a marginal
/// term that grows with the setpoint-ambient gap. This split matters for
/// reproducing the paper's headline trade-off: the Energy Planner saves the
/// duty overhead of low-deficiency rule-hours at near-zero convenience
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HvacModel {
    /// Duty-cycle base draw while the unit holds any setpoint, kWh per hour.
    pub base_kwh: f64,
    /// Marginal kWh per hour per °C of setpoint-ambient gap.
    pub kwh_per_degree: f64,
    /// Rated ceiling, kWh per hour (compressor at full duty).
    pub rated_kwh: f64,
}

impl HvacModel {
    /// A 2.5 kW split unit serving a ≈50 m² flat (the paper's flat dataset).
    pub fn split_unit_flat() -> Self {
        HvacModel {
            base_kwh: 0.35,
            kwh_per_degree: 0.04,
            rated_kwh: 2.5,
        }
    }

    /// Scales all terms by `factor` (used to model units serving
    /// larger/smaller zones in the house/dorms datasets).
    pub fn scaled(&self, factor: f64) -> Self {
        HvacModel {
            base_kwh: self.base_kwh * factor,
            kwh_per_degree: self.kwh_per_degree * factor,
            rated_kwh: self.rated_kwh * factor,
        }
    }
}

impl DeviceEnergyModel for HvacModel {
    fn hourly_kwh(&self, target: f64, ambient: f64) -> f64 {
        let gap = (target - ambient).abs();
        (self.base_kwh + self.kwh_per_degree * gap).min(self.rated_kwh)
    }
}

/// A dimmable light fixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LightModel {
    /// Consumption at level 100, kWh per hour.
    pub max_kwh: f64,
}

impl LightModel {
    /// A 100 W LED array, the flat's lighting.
    pub fn led_array() -> Self {
        LightModel { max_kwh: 0.1 }
    }
}

impl DeviceEnergyModel for LightModel {
    /// Lights do not react to ambient light in our model: executing a
    /// "Set Light 40" rule costs 40 % of max power regardless of daylight —
    /// the *convenience* of skipping it depends on the ambient, the *cost*
    /// of executing it does not.
    fn hourly_kwh(&self, target: f64, _ambient: f64) -> f64 {
        self.max_kwh * (target.clamp(0.0, 100.0) / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hvac_cost_grows_with_gap() {
        let m = HvacModel::split_unit_flat();
        let cold = m.hourly_kwh(25.0, 5.0); // 20° gap
        let mild = m.hourly_kwh(25.0, 20.0); // 5° gap
        assert!(cold > mild);
        assert!((cold - (0.35 + 0.04 * 20.0)).abs() < 1e-12);
    }

    #[test]
    fn hvac_cost_symmetric_heat_cool() {
        let m = HvacModel::split_unit_flat();
        assert_eq!(m.hourly_kwh(22.0, 30.0), m.hourly_kwh(22.0, 14.0));
    }

    #[test]
    fn hvac_cost_capped_at_rated() {
        let m = HvacModel::split_unit_flat();
        assert_eq!(m.hourly_kwh(25.0, -100.0), m.rated_kwh);
    }

    #[test]
    fn hvac_zero_gap_costs_duty_base() {
        let m = HvacModel::split_unit_flat();
        assert_eq!(m.hourly_kwh(22.0, 22.0), m.base_kwh);
    }

    #[test]
    fn scaled_unit() {
        let m = HvacModel::split_unit_flat().scaled(0.5);
        assert_eq!(m.kwh_per_degree, 0.04 * 0.5);
        assert_eq!(m.rated_kwh, 1.25);
        assert_eq!(m.base_kwh, 0.35 * 0.5);
    }

    #[test]
    fn light_cost_proportional_to_level() {
        let l = LightModel::led_array();
        assert_eq!(l.hourly_kwh(0.0, 50.0), 0.0);
        assert!((l.hourly_kwh(40.0, 0.0) - 0.04).abs() < 1e-12);
        assert_eq!(l.hourly_kwh(100.0, 0.0), 0.1);
    }

    #[test]
    fn light_cost_clamps_level() {
        let l = LightModel::led_array();
        assert_eq!(l.hourly_kwh(250.0, 0.0), 0.1);
        assert_eq!(l.hourly_kwh(-5.0, 0.0), 0.0);
    }

    #[test]
    fn light_ignores_ambient() {
        let l = LightModel::led_array();
        assert_eq!(l.hourly_kwh(40.0, 0.0), l.hourly_kwh(40.0, 90.0));
    }

    /// Sanity-check the flat calibration target of DESIGN.md §5: running
    /// Table II greedily for 3 paper-years should land in the 12–17 MWh
    /// band (the paper's MR flat consumption is ≈14.5 MWh).
    #[test]
    fn flat_mr_three_year_ballpark() {
        let hvac = HvacModel::split_unit_flat();
        let light = LightModel::led_array();
        // Table II daily pattern: HVAC 21 h/day at seasonal mean gaps
        // (winter ≈13 °C for 3 months, shoulder ≈6 °C for 6, summer ≈1.5 °C
        // for 3); lights 5 h@40 + 7 h@30 + 6 h@40.
        let hvac_yearly: f64 = [(13.0, 3.0), (6.0, 6.0), (1.5, 3.0)]
            .iter()
            .map(|(gap, months)| 21.0 * hvac.hourly_kwh(22.0 + gap, 22.0) * months * 31.0)
            .sum();
        let light_daily = 5.0 * light.hourly_kwh(40.0, 0.0)
            + 7.0 * light.hourly_kwh(30.0, 0.0)
            + 6.0 * light.hourly_kwh(40.0, 0.0);
        let three_years = 3.0 * (hvac_yearly + light_daily * 372.0);
        assert!(
            (12_000.0..=17_000.0).contains(&three_years),
            "3-year MR estimate {three_years:.0} kWh out of calibration band"
        );
    }
}
