//! Property-based tests for the device substrate: energy-model monotonicity
//! and bounds, UID parsing round trips, and registry behaviour under
//! arbitrary command sequences.

use imcf_devices::channel::ChannelUid;
use imcf_devices::command::{ActuationMode, Command, CommandOutcome, CommandPayload};
use imcf_devices::energy::{DeviceEnergyModel, HvacModel, LightModel};
use imcf_devices::item::{Item, ItemKind, ItemState};
use imcf_devices::registry::DeviceRegistry;
use imcf_devices::thing::{Thing, ThingKind, ThingUid};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// HVAC cost is bounded by [0, rated], includes the duty base whenever
    /// on, and is monotone in the setpoint-ambient gap.
    #[test]
    fn hvac_model_bounds_and_monotonicity(
        target in -10.0f64..40.0,
        ambient in -10.0f64..40.0,
        scale in 0.1f64..2.0,
    ) {
        let m = HvacModel::split_unit_flat().scaled(scale);
        let kwh = m.hourly_kwh(target, ambient);
        prop_assert!(kwh >= 0.0);
        prop_assert!(kwh <= m.rated_kwh + 1e-12);
        prop_assert!(kwh + 1e-12 >= m.base_kwh.min(m.rated_kwh));
        // Widening the gap never reduces cost.
        let wider = m.hourly_kwh(target, ambient + (target - ambient).signum() * -5.0);
        prop_assert!(wider + 1e-9 >= kwh);
    }

    /// Light cost is linear in level within 0–100 and clamps outside.
    #[test]
    fn light_model_linearity(level in -50.0f64..150.0) {
        let m = LightModel::led_array();
        let kwh = m.hourly_kwh(level, 0.0);
        let clamped = level.clamp(0.0, 100.0);
        prop_assert!((kwh - m.max_kwh * clamped / 100.0).abs() < 1e-12);
    }

    /// Thing and channel UIDs round-trip through their string form.
    #[test]
    fn uid_string_roundtrip(a in "[a-z]{1,8}", b in "[a-z]{1,8}", c in "[a-z]{1,8}", ch in "[a-z]{1,8}") {
        let uid = ThingUid::new(&a, &b, &c);
        prop_assert_eq!(ThingUid::parse(&uid.to_string()).unwrap(), uid.clone());
        let channel = ChannelUid::new(uid, &ch);
        prop_assert_eq!(ChannelUid::parse(&channel.to_string()).unwrap(), channel);
    }

    /// The registry's counters always equal delivered + blocked outcomes,
    /// and item state reflects the last delivered command.
    #[test]
    fn registry_counters_and_state(
        commands in proptest::collection::vec((0.0f64..40.0, any::<bool>()), 1..20),
    ) {
        let registry = DeviceRegistry::new();
        let uid = ThingUid::new("imcf", "hvac", "z");
        registry
            .add_thing(Thing::new(uid.clone(), "z", ThingKind::HvacUnit, "10.0.0.1", "z"))
            .unwrap();
        let channel = ChannelUid::new(uid, "settemp");
        registry
            .add_item(Item::new("z_SetPoint", ItemKind::Number).linked_to(channel.clone()))
            .unwrap();
        // Block odd-valued commands.
        registry.set_egress_filter(|_, cmd| match cmd.payload {
            CommandPayload::SetTemperature { celsius, .. } => (celsius as i64) % 2 == 0,
            _ => true,
        });
        let mut delivered = 0u64;
        let mut blocked = 0u64;
        let mut last_delivered: Option<f64> = None;
        for (value, extended) in commands {
            let cmd = Command {
                channel: channel.clone(),
                payload: CommandPayload::SetTemperature { celsius: value, cooling: false },
                mode: if extended { ActuationMode::Extended } else { ActuationMode::Binding },
            };
            match registry.dispatch(&cmd).unwrap() {
                CommandOutcome::Delivered(_) => {
                    delivered += 1;
                    last_delivered = Some(value);
                }
                CommandOutcome::Blocked => blocked += 1,
                CommandOutcome::Offline => prop_assert!(false, "thing is online"),
                CommandOutcome::Failed { .. } => prop_assert!(false, "no fault injector installed"),
            }
        }
        prop_assert_eq!(registry.counters(), (delivered, blocked));
        if let Some(v) = last_delivered {
            prop_assert_eq!(registry.item("z_SetPoint").unwrap().state, ItemState::Decimal(v));
        }
    }

    /// Command rendering never panics and extended mode always embeds the
    /// host address.
    #[test]
    fn extended_render_embeds_host(value in 0.0f64..40.0, host_octet in 1u8..250) {
        let host = format!("192.168.0.{host_octet}");
        let thing = Thing::new(ThingUid::new("d", "ac", "x"), "x", ThingKind::HvacUnit, &host, "z");
        let cmd = Command::extended(
            ChannelUid::new(thing.uid.clone(), "settemp"),
            CommandPayload::SetTemperature { celsius: value, cooling: true },
        );
        let wire = cmd.render(&thing);
        prop_assert!(wire.contains(&host));
        prop_assert!(wire.contains("mode=3"));
    }
}
