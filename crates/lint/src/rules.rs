//! The IMCF lint rules over the token stream.
//!
//! | Rule | Meaning |
//! |------|---------|
//! | IMCF-L001 | no `.unwrap()` / `.expect(...)` in non-test library code |
//! | IMCF-L002 | no ambient nondeterminism (`Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`) in `crates/sim`, `crates/traces`, `crates/core` |
//! | IMCF-L003 | no float `==` / `!=` outside tests |
//! | IMCF-L004 | every dotted metric name passed to `counter*`/`gauge*`/`histogram*`/`span!` must be in the `imcf-telemetry` catalog |
//! | IMCF-L005 | `unsafe` blocks need a `// SAFETY:` comment; `static mut` is forbidden |
//! | IMCF-L006 | lock-acquisition order must be globally consistent; no re-entrant double-locks (see [`crate::locks`]) |
//! | IMCF-L007 | no blocking calls (I/O, publish, sleep) while a lock guard is held |
//! | IMCF-L008 | no nondeterminism reachable from bench/export entry points (see [`crate::taint`]) |
//! | IMCF-L009 | `crates/net` + `crates/store`: parsed-length values need checked arithmetic and `try_into` |
//!
//! L001–L005 run over the token stream; L006–L009 run over the AST and
//! workspace call graph built by [`crate::parser`] / [`crate::callgraph`].
//!
//! Suppress a finding with a trailing or preceding
//! `// imcf-lint: allow(L00x)` comment. Doc comments (`///`, `//!`) never
//! suppress: they are part of the rendered API documentation, not lint
//! directives.

use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    L001,
    L002,
    L003,
    L004,
    L005,
    L006,
    L007,
    L008,
    L009,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::L001,
    Rule::L002,
    Rule::L003,
    Rule::L004,
    Rule::L005,
    Rule::L006,
    Rule::L007,
    Rule::L008,
    Rule::L009,
];

impl Rule {
    /// The short code used in baselines and suppressions (`L001`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
        }
    }

    /// Parses a short code.
    pub fn from_code(code: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.code() == code)
    }

    /// One-line description used in reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::L001 => "`unwrap()`/`expect()` in non-test library code",
            Rule::L002 => "ambient nondeterminism in deterministic crate (inject a clock or use imcf-telemetry)",
            Rule::L003 => "float `==`/`!=` comparison (use an epsilon helper)",
            Rule::L004 => "metric name missing from the imcf-telemetry catalog",
            Rule::L005 => "unsafe without `// SAFETY:` comment, or `static mut`",
            Rule::L006 => "inconsistent lock-acquisition order or re-entrant double-lock",
            Rule::L007 => "blocking call while holding a lock guard (drop the guard first)",
            Rule::L008 => "nondeterminism reachable from a deterministic entry point",
            Rule::L009 => "unchecked arithmetic or narrowing cast on a wire-derived length",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Crates whose planning/replay code must stay deterministic (L002).
const DETERMINISTIC_PATHS: [&str; 3] = ["crates/sim/", "crates/traces/", "crates/core/"];

/// Method names whose first string argument is a metric name (L004).
const METRIC_METHODS: [&str; 7] = [
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
    "histogram_with_buckets",
];

/// Lints one file's source. `rel_path` is the workspace-relative path with
/// forward slashes; it decides rule applicability (L002 crates, test dirs).
pub fn lint_source(rel_path: &str, source: &str, findings: &mut Vec<Finding>) {
    let lexed = lex(source);
    lint_tokens(rel_path, &lexed, findings);
}

/// Runs the token-stream rules (L001–L005) over an already-lexed file, so
/// the workspace driver can share one lex with the parser.
pub fn lint_tokens(rel_path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let file_is_test = is_test_path(rel_path);
    let test_marker = test_region_marker(&lexed.tokens);
    let deterministic = DETERMINISTIC_PATHS.iter().any(|p| rel_path.starts_with(p));

    let toks = &lexed.tokens;
    let mut reported_l005_static: Option<u32> = None;
    for i in 0..toks.len() {
        let line = toks[i].line;
        let in_test = file_is_test || test_marker[i];
        let mut push = |rule: Rule, message: String| {
            if !suppressed(&lexed.comments, rule, line) {
                findings.push(Finding {
                    rule,
                    file: rel_path.to_string(),
                    line,
                    message,
                });
            }
        };

        // L001: `.unwrap()` / `.expect(`
        if !in_test
            && toks[i].tok == Tok::Punct(".")
            && matches!(&toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(name)) if name == "unwrap" || name == "expect")
            && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct("("))
        {
            let name = match &toks[i + 1].tok {
                Tok::Ident(n) => n.as_str(),
                _ => "",
            };
            push(Rule::L001, format!("`.{name}()` in library code"));
        }

        // L002: ambient nondeterminism in deterministic crates.
        if deterministic && !in_test {
            if let Tok::Ident(name) = &toks[i].tok {
                let qualified_now = (name == "Instant" || name == "SystemTime")
                    && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("::"))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "now");
                let entropy_fn = name == "thread_rng" || name == "from_entropy";
                if qualified_now {
                    push(Rule::L002, format!("`{name}::now` in deterministic crate"));
                } else if entropy_fn && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("(")) {
                    push(
                        Rule::L002,
                        format!("`{name}()` (ambient randomness) in deterministic crate"),
                    );
                }
            }
        }

        // L003: float equality.
        if !in_test && matches!(toks[i].tok, Tok::Punct("==") | Tok::Punct("!=")) {
            let float_adjacent =
                matches!(
                    i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok),
                    Some(Tok::Float(_))
                ) || matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Float(_)));
            if float_adjacent {
                let op = match toks[i].tok {
                    Tok::Punct(p) => p,
                    _ => "==",
                };
                push(Rule::L003, format!("float `{op}` against a literal"));
            }
        }

        // L004: metric names must be cataloged.
        if !in_test {
            if let Tok::Ident(name) = &toks[i].tok {
                let metric_name = if METRIC_METHODS.contains(&name.as_str()) {
                    // method call: counter("a.b" ...
                    match (
                        toks.get(i + 1).map(|t| &t.tok),
                        toks.get(i + 2).map(|t| &t.tok),
                    ) {
                        (Some(Tok::Punct("(")), Some(Tok::Str(s))) => Some(s.clone()),
                        _ => None,
                    }
                } else if name == "span" {
                    // macro call: span!("a.b" ...
                    match (
                        toks.get(i + 1).map(|t| &t.tok),
                        toks.get(i + 2).map(|t| &t.tok),
                        toks.get(i + 3).map(|t| &t.tok),
                    ) {
                        (Some(Tok::Punct("!")), Some(Tok::Punct("(")), Some(Tok::Str(s))) => {
                            Some(s.clone())
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(metric) = metric_name {
                    if metric.contains('.') && !imcf_telemetry::catalog::is_cataloged(&metric) {
                        push(
                            Rule::L004,
                            format!(
                                "metric `{metric}` is not in the imcf-telemetry catalog \
                                 (crates/telemetry/src/catalog.rs)"
                            ),
                        );
                    }
                }
            }
        }

        // L005: unsafe blocks need SAFETY comments; static mut forbidden.
        if let Tok::Ident(name) = &toks[i].tok {
            if name == "unsafe" && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("{")) {
                let documented = lexed.comments.iter().any(|c| {
                    c.text.contains("SAFETY:") && c.end_line + 3 >= line && c.line <= line
                });
                if !documented {
                    push(
                        Rule::L005,
                        "`unsafe` block without a `// SAFETY:` comment".to_string(),
                    );
                }
            }
            if name == "static"
                && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut")
                && reported_l005_static != Some(line)
            {
                reported_l005_static = Some(line);
                push(Rule::L005, "`static mut` is forbidden".to_string());
            }
        }
    }
}

/// True for paths whose whole content is test/bench/example code.
fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Per-token flags marking `#[cfg(test)]` / `#[test]` items: the attribute
/// itself through the end of the braced item it gates (or its trailing `;`).
fn test_region_marker(tokens: &[Token]) -> Vec<bool> {
    let mut marker = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct("#")
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct("["))
        {
            // Collect the attribute's tokens up to the matching `]`.
            let attr_start = i + 2;
            let mut depth = 1usize;
            let mut j = attr_start;
            while j < tokens.len() && depth > 0 {
                match tokens[j].tok {
                    Tok::Punct("[") => depth += 1,
                    Tok::Punct("]") => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr = &tokens[attr_start..j.saturating_sub(1)];
            if attr_is_testish(attr) {
                // Mark from the attribute through the end of the next
                // braced item (or to the `;` for `mod x;`).
                let mut k = j;
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < tokens.len() {
                    match tokens[k].tok {
                        Tok::Punct("{") => {
                            brace_depth += 1;
                            entered = true;
                        }
                        Tok::Punct("}") => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if entered && brace_depth == 0 {
                                break;
                            }
                        }
                        Tok::Punct(";") if !entered => break,
                        _ => {}
                    }
                    k += 1;
                }
                let end = k.min(tokens.len().saturating_sub(1));
                for flag in &mut marker[i..=end] {
                    *flag = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    marker
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` — but NOT
/// `#[cfg(not(test))]`.
fn attr_is_testish(attr: &[Token]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    for t in attr {
        if let Tok::Ident(name) = &t.tok {
            if name == "test" {
                has_test = true;
            }
            if name == "not" {
                has_not = true;
            }
        }
    }
    has_test && !has_not
}

/// Does a suppression comment cover `rule` on `line`? Both trailing
/// (same line) and preceding (previous line) comments count. Doc comments
/// never suppress — an `allow(...)` in rendered documentation is prose
/// about the lint, not a directive to it. (The lexer keeps string-literal
/// contents out of the comment list entirely, so an `allow(...)` inside a
/// string can't suppress either.)
pub fn suppressed(comments: &[Comment], rule: Rule, line: u32) -> bool {
    comments.iter().any(|c| {
        !c.is_doc
            && (c.line == line || c.end_line + 1 == line)
            && parse_allows(&c.text).contains(&rule)
    })
}

/// Parses `imcf-lint: allow(L001, L003)` out of a comment.
fn parse_allows(comment: &str) -> Vec<Rule> {
    let Some(idx) = comment.find("imcf-lint:") else {
        return Vec::new();
    };
    let rest = &comment[idx + "imcf-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let inner = &rest[open + "allow(".len()..];
    let Some(close) = inner.find(')') else {
        return Vec::new();
    };
    inner[..close]
        .split(',')
        .filter_map(|code| Rule::from_code(code.trim()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(path: &str, src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_source(path, src, &mut out);
        out
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l001_fires_on_unwrap_and_expect() {
        let f = findings_for(
            "crates/x/src/lib.rs",
            "fn f() { a.unwrap(); b.expect(\"msg\"); }",
        );
        assert_eq!(rules_of(&f), vec![Rule::L001, Rule::L001]);
    }

    #[test]
    fn l001_ignores_test_module_and_test_files() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f() { a.unwrap(); }\n}\n";
        assert!(findings_for("crates/x/src/lib.rs", src).is_empty());
        assert!(findings_for("crates/x/tests/t.rs", "fn f() { a.unwrap(); }").is_empty());
        assert!(findings_for("examples/e.rs", "fn f() { a.unwrap(); }").is_empty());
    }

    #[test]
    fn l001_respects_test_fn_attribute_only_for_that_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn lib() { b.unwrap(); }\n";
        let f = findings_for("crates/x/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f() { a.unwrap(); }\n";
        assert_eq!(findings_for("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn l002_only_in_deterministic_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_of(&findings_for("crates/core/src/planner.rs", src)),
            vec![Rule::L002]
        );
        assert!(findings_for("crates/controller/src/api.rs", src).is_empty());
        let src = "fn f() { let mut r = thread_rng(); }";
        assert_eq!(
            rules_of(&findings_for("crates/sim/src/engine.rs", src)),
            vec![Rule::L002]
        );
    }

    #[test]
    fn l003_fires_on_float_literal_equality() {
        let f = findings_for(
            "crates/x/src/lib.rs",
            "fn f(v: f64) -> bool { v == 0.0 || 1.5 != v }",
        );
        assert_eq!(rules_of(&f), vec![Rule::L003, Rule::L003]);
        // Integer equality is fine.
        assert!(findings_for("crates/x/src/lib.rs", "fn f(v: u64) -> bool { v == 0 }").is_empty());
    }

    #[test]
    fn l004_uncataloged_metric_name() {
        let f = findings_for(
            "crates/x/src/lib.rs",
            "fn f(r: &Registry) { r.counter(\"zzz.not_in_catalog\").inc(); }",
        );
        assert_eq!(rules_of(&f), vec![Rule::L004]);
        // Cataloged names pass.
        let f = findings_for(
            "crates/x/src/lib.rs",
            "fn f(r: &Registry) { r.counter(\"planner.slots_planned\").inc(); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // span! macro form.
        let f = findings_for(
            "crates/x/src/lib.rs",
            "fn f() { let _s = imcf_telemetry::span!(\"zzz.rogue_span\"); }",
        );
        assert_eq!(rules_of(&f), vec![Rule::L004]);
    }

    #[test]
    fn l004_ignores_undotted_names_and_non_literal_args() {
        assert!(findings_for("crates/x/src/lib.rs", "r.counter(\"plain\");").is_empty());
        assert!(findings_for("crates/x/src/lib.rs", "r.counter(name);").is_empty());
    }

    #[test]
    fn l005_unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { танец() } }";
        assert_eq!(
            rules_of(&findings_for("crates/x/src/lib.rs", bad)),
            vec![Rule::L005]
        );
        let good = "fn f() {\n    // SAFETY: the pointer outlives the call.\n    unsafe { g() }\n}";
        assert!(findings_for("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn l005_static_mut_forbidden_even_with_safety() {
        let src = "// SAFETY: single-threaded\nstatic mut X: u32 = 0;";
        assert_eq!(
            rules_of(&findings_for("crates/x/src/lib.rs", src)),
            vec![Rule::L005]
        );
    }

    #[test]
    fn suppressions_cover_trailing_and_preceding_comments() {
        let trailing = "fn f() { a.unwrap(); } // imcf-lint: allow(L001) — infallible here";
        assert!(findings_for("crates/x/src/lib.rs", trailing).is_empty());
        let preceding =
            "// imcf-lint: allow(L003) — exact-zero guard\nfn f(v: f64) -> bool { v == 0.0 }";
        assert!(findings_for("crates/x/src/lib.rs", preceding).is_empty());
        // A suppression for a different rule does not hide the finding.
        let wrong = "fn f() { a.unwrap(); } // imcf-lint: allow(L003)";
        assert_eq!(findings_for("crates/x/src/lib.rs", wrong).len(), 1);
    }

    #[test]
    fn suppression_list_parses_multiple_rules() {
        assert_eq!(
            parse_allows("// imcf-lint: allow(L001, L003)"),
            vec![Rule::L001, Rule::L003]
        );
        assert!(parse_allows("// nothing to see").is_empty());
    }

    #[test]
    fn string_and_comment_contents_never_fire() {
        let src = "fn f() { let s = \"a.unwrap()\"; /* b.unwrap() */ }";
        assert!(findings_for("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn suppression_inside_string_literal_does_not_suppress() {
        let src = "fn f() { let s = \"// imcf-lint: allow(L001)\"; a.unwrap(); }";
        assert_eq!(findings_for("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn suppression_in_doc_comment_does_not_suppress() {
        // A doc comment directly above the finding would count as a
        // preceding comment if doc comments could suppress.
        let src = "/// imcf-lint: allow(L001) — documented, not directed\nfn f() { a.unwrap(); }";
        assert_eq!(findings_for("crates/x/src/lib.rs", src).len(), 1);
        // The same text in a plain comment does suppress.
        let src = "// imcf-lint: allow(L001) — infallible\nfn f() { a.unwrap(); }";
        assert!(findings_for("crates/x/src/lib.rs", src).is_empty());
    }
}
