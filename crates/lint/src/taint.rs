//! Determinism-taint and wire-arithmetic analysis (IMCF-L008, IMCF-L009).
//!
//! ## L008 — determinism taint
//!
//! L002 forbids ambient nondeterminism *inside* three hardcoded crates.
//! L008 generalizes it to reachability: starting from deterministic entry
//! points — bench binary `main`s and `export_*`/`render_*`/`to_json`
//! serialization functions — any call-graph path to a nondeterminism
//! source is a finding:
//!
//! - `Instant::now` / `SystemTime::now` (wall-clock reads),
//! - `thread_rng()` / `from_entropy()` (ambient randomness),
//! - `thread::current` (thread-identity-dependent state),
//! - iteration over `HashMap`/`HashSet` locals (`iter`, `keys`, `values`,
//!   `drain`, `retain`, or a `for` loop), whose order is randomized.
//!
//! `crates/telemetry` is the sanctioned measurement layer: its internals
//! (`Stopwatch` wraps `Instant::now`) are excluded from sink collection,
//! so timing *through* telemetry stays green while a raw `Instant::now`
//! on a bench path is flagged. Hash containers reached through struct
//! fields (not locals) are a documented false negative.
//!
//! ## L009 — wire arithmetic
//!
//! In `crates/net` and `crates/store`, a value derived from parsing
//! wire- or disk-controlled text
//! (`.parse()`, `from_str_radix`) must not flow into unchecked `+`/`*`
//! or a narrowing `as` cast — the PR 6 hand-audit, made permanent.
//! `checked_*`/`saturating_*`/`wrapping_*`, `min`/`max`/`clamp` and
//! `try_into`/`try_from` sanitize the value. The analysis is
//! intra-procedural over locals.

use crate::ast::{Block, Expr, File, ItemKind, Stmt};
use crate::callgraph::CallGraph;
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

// ----------------------------------------------------------------------
// L008
// ----------------------------------------------------------------------

/// Hash-container iteration methods whose order is randomized.
const HASH_ITER_METHODS: [&str; 8] = [
    "drain",
    "into_iter",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// One direct nondeterminism source in a function.
struct Sink {
    what: String,
    line: u32,
}

/// Runs L008 over the workspace call graph.
pub fn lint_determinism(graph: &CallGraph) -> Vec<Finding> {
    let n = graph.fns.len();
    let mut own_sinks: Vec<Vec<Sink>> = Vec::with_capacity(n);
    for id in 0..n {
        let node = &graph.fns[id];
        let file = &graph.files[node.file];
        // The telemetry crate is the sanctioned measurement layer; test
        // code is free to do whatever it wants.
        if node.in_test || file.crate_name == "telemetry" {
            own_sinks.push(Vec::new());
            continue;
        }
        own_sinks.push(match node.body {
            Some(body) => collect_sinks(body),
            None => Vec::new(),
        });
    }

    // Reachability fixpoint: `reaches[f]` is the nearest own-sink function
    // (by BFS order) reachable from `f`, as (fn id, via-path length).
    let mut tainted: Vec<bool> = own_sinks.iter().map(|s| !s.is_empty()).collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            if tainted[id] {
                continue;
            }
            if graph.edges[id].iter().any(|(c, _)| tainted[*c]) {
                tainted[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for id in 0..n {
        if !is_entry(graph, id) || !tainted[id] {
            continue;
        }
        let file = graph.files[graph.fns[id].file].rel_path.clone();
        if let Some(sink) = own_sinks[id].first() {
            findings.push(Finding {
                rule: Rule::L008,
                file,
                line: sink.line,
                message: format!(
                    "deterministic entry `{}` uses nondeterministic {}",
                    graph.label(id),
                    sink.what
                ),
            });
            continue;
        }
        // BFS to the nearest sink-bearing function for the witness path.
        let (path, sink_what) = witness_path(graph, &own_sinks, id);
        findings.push(Finding {
            rule: Rule::L008,
            file,
            line: graph.fns[id].line,
            message: format!(
                "deterministic entry `{}` reaches nondeterministic {} via {}",
                graph.label(id),
                sink_what,
                path.join(" -> ")
            ),
        });
    }
    findings
}

/// Deterministic entry points: bench/bin `main`s and serialization fns.
fn is_entry(graph: &CallGraph, id: usize) -> bool {
    let node = &graph.fns[id];
    if node.in_test {
        return false;
    }
    let rel = &graph.files[node.file].rel_path;
    (node.name == "main" && rel.contains("/src/bin/"))
        || node.name.starts_with("export_")
        || node.name.starts_with("render_")
        || node.name == "to_json"
}

/// Shortest call path (by BFS over sorted edges) from `from` to a
/// function with its own sink; returns the labels along the path and the
/// sink description.
fn witness_path(graph: &CallGraph, own_sinks: &[Vec<Sink>], from: usize) -> (Vec<String>, String) {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(cur) = queue.pop_front() {
        if cur != from && !own_sinks[cur].is_empty() {
            let mut path = vec![graph.label(cur)];
            let mut at = cur;
            while let Some(p) = prev.get(&at) {
                if *p != from {
                    path.push(graph.label(*p));
                }
                at = *p;
            }
            path.reverse();
            return (path, own_sinks[cur][0].what.clone());
        }
        for (next, _) in &graph.edges[cur] {
            if seen.insert(*next) {
                prev.insert(*next, cur);
                queue.push_back(*next);
            }
        }
    }
    (vec![String::from("?")], String::from("source"))
}

/// Collects a function's direct nondeterminism sources.
fn collect_sinks(body: &Block) -> Vec<Sink> {
    let mut sinks = Vec::new();
    // Locals whose type or constructor marks them as hash containers.
    let mut hash_locals: BTreeSet<&str> = BTreeSet::new();
    for_each_stmt(body, &mut |stmt| {
        if let Stmt::Let {
            name: Some(name),
            ty,
            init,
            ..
        } = stmt
        {
            let hashy_ty = ty.contains("HashMap") || ty.contains("HashSet");
            let hashy_init = matches!(
                init,
                Some(Expr::Call { callee, .. })
                    if matches!(callee.as_ref(), Expr::Path { segs, .. }
                        if segs.len() >= 2
                            && (segs[segs.len() - 2] == "HashMap"
                                || segs[segs.len() - 2] == "HashSet"))
            );
            if hashy_ty || hashy_init {
                hash_locals.insert(name.as_str());
            }
        }
    });
    body.walk_exprs(&mut |e| match e {
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                let last = segs.last().map(String::as_str).unwrap_or("");
                let prev = segs.len().checked_sub(2).map(|i| segs[i].as_str());
                if last == "now" && matches!(prev, Some("Instant") | Some("SystemTime")) {
                    sinks.push(Sink {
                        what: format!("`{}::now`", prev.unwrap_or("")),
                        line: *line,
                    });
                }
                if last == "thread_rng" || last == "from_entropy" {
                    sinks.push(Sink {
                        what: format!("`{last}()` (ambient randomness)"),
                        line: *line,
                    });
                }
                if last == "current" && prev == Some("thread") {
                    sinks.push(Sink {
                        what: String::from("`thread::current` (thread-identity state)"),
                        line: *line,
                    });
                }
            }
        }
        Expr::MethodCall {
            recv, method, line, ..
        } if HASH_ITER_METHODS.contains(&method.as_str()) => {
            if let Some(place) = recv.place() {
                if hash_locals.contains(place.as_str()) {
                    sinks.push(Sink {
                        what: format!("iteration over hash container `{place}`"),
                        line: *line,
                    });
                }
            }
        }
        Expr::ForLoop { iter, line, .. } => {
            if let Some(place) = iter.place() {
                if hash_locals.contains(place.as_str()) {
                    sinks.push(Sink {
                        what: format!("iteration over hash container `{place}`"),
                        line: *line,
                    });
                }
            }
        }
        _ => {}
    });
    sinks.sort_by_key(|s| s.line);
    sinks
}

/// Visits every statement in a block tree (following nested blocks inside
/// expressions is unnecessary for local-type collection in practice, but
/// cheap: walk expressions and recurse into their blocks).
fn for_each_stmt<'a>(block: &'a Block, visit: &mut dyn FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        visit(stmt);
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    for_each_stmt_expr(e, visit);
                }
                if let Some(b) = else_block {
                    for_each_stmt(b, visit);
                }
            }
            Stmt::Expr(e) => for_each_stmt_expr(e, visit),
            Stmt::Item(_) => {}
        }
    }
}

fn for_each_stmt_expr<'a>(expr: &'a Expr, visit: &mut dyn FnMut(&'a Stmt)) {
    expr.walk(&mut |e| {
        let block = match e {
            Expr::Block(b) => Some(b),
            Expr::If { then, .. } => Some(then),
            Expr::While { body, .. } | Expr::Loop { body, .. } | Expr::ForLoop { body, .. } => {
                Some(body)
            }
            _ => None,
        };
        if let Some(b) = block {
            for stmt in &b.stmts {
                visit(stmt);
            }
        }
    });
}

// ----------------------------------------------------------------------
// L009
// ----------------------------------------------------------------------

/// Methods that sanitize a parsed-length value.
const SANITIZERS: [&str; 4] = ["clamp", "max", "min", "try_into"];

/// Narrowing `as` targets.
const NARROWING: [&str; 6] = ["i16", "i32", "i8", "u16", "u32", "u8"];

/// Runs L009 on one file. The rule covers the crates that parse
/// wire/on-disk integers: `crates/net` (HTTP framing) and `crates/store`
/// (WAL segment headers and sequence numbers).
pub fn lint_wire_arithmetic(rel_path: &str, ast: &File) -> Vec<Finding> {
    if !rel_path.starts_with("crates/net/") && !rel_path.starts_with("crates/store/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for item in &ast.items {
        item.walk("", false, &mut |ctx| {
            if ctx.in_test {
                return;
            }
            if let ItemKind::Fn(body) = &ctx.item.kind {
                let mut w = WireTaint {
                    rel_path,
                    tainted: BTreeSet::new(),
                    findings: &mut findings,
                };
                w.run_block(body);
            }
        });
    }
    findings
}

struct WireTaint<'a> {
    rel_path: &'a str,
    /// Locals carrying a parse-derived value.
    tainted: BTreeSet<String>,
    findings: &'a mut Vec<Finding>,
}

impl WireTaint<'_> {
    fn run_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    name,
                    init,
                    else_block,
                    ..
                } => {
                    let t = match init {
                        Some(e) => self.eval(e),
                        None => false,
                    };
                    if let Some(b) = else_block {
                        self.run_block(b);
                    }
                    if let Some(n) = name {
                        if t {
                            self.tainted.insert(n.clone());
                        } else {
                            self.tainted.remove(n);
                        }
                    }
                }
                Stmt::Expr(e) => {
                    self.eval(e);
                }
                Stmt::Item(_) => {}
            }
        }
    }

    /// Evaluates an expression's taint, reporting violations inline.
    fn eval(&mut self, expr: &Expr) -> bool {
        match expr {
            Expr::Path { segs, .. } => segs.len() == 1 && self.tainted.contains(&segs[0]),
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let rt = self.eval(recv);
                let mut at = false;
                for a in args {
                    at |= self.eval(a);
                }
                match method.as_str() {
                    // Sources: parsing attacker-controlled text.
                    "parse" => true,
                    m if SANITIZERS.contains(&m)
                        || m.starts_with("checked_")
                        || m.starts_with("saturating_")
                        || m.starts_with("wrapping_") =>
                    {
                        false
                    }
                    // Comparisons and predicates produce clean bools.
                    "eq" | "ne" | "lt" | "le" | "gt" | "ge" | "is_empty" => false,
                    _ => {
                        let _ = *line;
                        rt || at
                    }
                }
            }
            Expr::Call { callee, args, .. } => {
                let mut t = false;
                for a in args {
                    t |= self.eval(a);
                }
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    let last = segs.last().map(String::as_str).unwrap_or("");
                    if last == "from_str_radix" {
                        return true;
                    }
                    if last == "try_from" || last == "min" || last == "max" {
                        return false;
                    }
                }
                t
            }
            Expr::Binary { op, lhs, rhs, line } => {
                let lt = self.eval(lhs);
                let rt = self.eval(rhs);
                let t = lt || rt;
                if t && (*op == "+" || *op == "*") {
                    self.findings.push(Finding {
                        rule: Rule::L009,
                        file: self.rel_path.to_string(),
                        line: *line,
                        message: format!(
                            "unchecked `{op}` on a parsed-length value (use `checked_{}`)",
                            if *op == "+" { "add" } else { "mul" }
                        ),
                    });
                }
                // Comparisons yield clean bools; arithmetic stays tainted.
                !matches!(*op, "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||") && t
            }
            Expr::Cast { expr, ty, line } => {
                let t = self.eval(expr);
                if t && NARROWING.contains(&ty.as_str()) {
                    self.findings.push(Finding {
                        rule: Rule::L009,
                        file: self.rel_path.to_string(),
                        line: *line,
                        message: format!(
                            "narrowing `as {ty}` on a parsed-length value (use `try_into`)"
                        ),
                    });
                }
                t
            }
            Expr::Assign { lhs, rhs, .. } => {
                let t = self.eval(rhs);
                if let Some(p) = lhs.place() {
                    if !p.contains('.') {
                        if t {
                            self.tainted.insert(p);
                        } else {
                            self.tainted.remove(&p);
                        }
                    }
                }
                false
            }
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
                self.eval(expr)
            }
            Expr::Block(b) => {
                self.run_block(b);
                false
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.eval(cond);
                self.run_block(then);
                if let Some(e) = else_ {
                    self.eval(e);
                }
                false
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let t = self.eval(scrutinee);
                let mut any = false;
                for a in arms {
                    any |= self.eval(a);
                }
                t || any
            }
            Expr::While { cond, body, .. } => {
                self.eval(cond);
                self.run_block(body);
                false
            }
            Expr::Loop { body, .. } | Expr::ForLoop { body, .. } => {
                if let Expr::ForLoop { iter, .. } = expr {
                    self.eval(iter);
                }
                self.run_block(body);
                false
            }
            Expr::Closure { body, .. } => {
                self.eval(body);
                false
            }
            Expr::Return { expr, .. } => {
                if let Some(e) = expr {
                    self.eval(e);
                }
                false
            }
            Expr::Index { recv, index, .. } => {
                self.eval(recv);
                self.eval(index);
                false
            }
            Expr::Tuple { exprs, .. } | Expr::Array { exprs, .. } => {
                let mut t = false;
                for e in exprs {
                    t |= self.eval(e);
                }
                t
            }
            Expr::StructLit { fields, .. } => {
                for f in fields {
                    self.eval(f);
                }
                false
            }
            Expr::Lit { .. } | Expr::Macro { .. } | Expr::Field { .. } | Expr::Other { .. } => {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::tests::parse_files;
    use crate::callgraph::{CallGraph, ParsedFile};
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn det_findings(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<ParsedFile> = parse_files(sources);
        let graph = CallGraph::build(&files);
        lint_determinism(&graph)
    }

    fn wire_findings(src: &str) -> Vec<Finding> {
        lint_wire_arithmetic("crates/net/src/http.rs", &parse_file(&lex(src)))
    }

    #[test]
    fn l008_bench_main_reaching_instant_now_fires() {
        let f = det_findings(&[
            (
                "crates/bench/src/bin/bench_x.rs",
                "fn main() { imcf_core::step(); }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn step() { let t = Instant::now(); }\n",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Instant::now"));
        assert!(f[0].message.contains("core::step"));
        assert_eq!(f[0].file, "crates/bench/src/bin/bench_x.rs");
    }

    #[test]
    fn l008_timing_through_telemetry_is_sanctioned() {
        let f = det_findings(&[
            (
                "crates/bench/src/bin/bench_x.rs",
                "fn main() { let sw = imcf_telemetry::start(); }\n",
            ),
            (
                "crates/telemetry/src/lib.rs",
                "pub fn start() -> Stopwatch { Stopwatch { t: Instant::now() } }\n",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l008_export_fn_iterating_hashmap_fires() {
        let f = det_findings(&[(
            "crates/controller/src/export.rs",
            "pub fn export_rows() { let m: HashMap<String, u32> = HashMap::new(); for k in m.keys() { emit(k); } }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("hash container `m`"));
    }

    #[test]
    fn l008_btreemap_iteration_is_clean() {
        let f = det_findings(&[(
            "crates/controller/src/export.rs",
            "pub fn export_rows() { let m: BTreeMap<String, u32> = BTreeMap::new(); for k in m.keys() { emit(k); } }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l008_non_entry_fns_are_not_flagged() {
        let f = det_findings(&[(
            "crates/net/src/limiter.rs",
            "fn refill(&self) { let t = Instant::now(); }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l009_unchecked_add_on_parsed_value_fires() {
        let f = wire_findings(
            "fn content_length(s: &str) -> usize { let n: usize = s.parse().unwrap_or(0); n + 2 }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("checked_add"));
    }

    #[test]
    fn l009_checked_add_is_clean() {
        let f = wire_findings(
            "fn content_length(s: &str) -> Option<usize> { let n: usize = s.parse().ok()?; n.checked_add(2) }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l009_narrowing_cast_fires_and_try_into_is_clean() {
        let f = wire_findings(
            "fn shrink(s: &str) -> u16 { let n: u64 = s.parse().unwrap_or(0); n as u16 }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("try_into"));
        let f = wire_findings(
            "fn shrink(s: &str) -> u16 { let n: u64 = s.parse().unwrap_or(0); n.try_into().unwrap_or(0) }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l009_min_clamp_sanitize() {
        let f = wire_findings(
            "fn bounded(s: &str, cap: usize) -> usize { let n: usize = s.parse().unwrap_or(0); let n = n.min(cap); n + 1 }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l009_only_applies_to_net_and_store() {
        let src = "fn f(s: &str) -> usize { let n: usize = s.parse().unwrap_or(0); n + 2 }\n";
        let f = lint_wire_arithmetic("crates/core/src/lib.rs", &parse_file(&lex(src)));
        assert!(f.is_empty());
        // The store crate parses segment sequence numbers off disk; the
        // same discipline applies there.
        let f = lint_wire_arithmetic("crates/store/src/segment.rs", &parse_file(&lex(src)));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn l009_comparison_is_not_arithmetic() {
        let f = wire_findings(
            "fn check(s: &str, cap: usize) -> bool { let n: usize = s.parse().unwrap_or(0); n > cap }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
