//! Workspace discovery and source-file collection.

use std::path::{Path, PathBuf};

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        }
    }
}

/// Collects the `.rs` files imcf-lint scans: the `src/` trees of every
/// workspace crate under `crates/` plus the root `src/`, sorted for
/// deterministic output. `compat/` is excluded: those crates are in-tree
/// stand-ins for *external* dependencies (the registry is offline), so they
/// follow upstream idiom, not IMCF policy. Test directories (`tests/`,
/// `benches/`, `examples/`) are whole-file test context and are skipped at
/// collection time.
pub fn collect_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        members.retain(|p| p.is_dir());
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            walk_rs(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative path with forward slashes (lint rule scoping and
/// report output both use this form).
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_collects_sources() {
        let cwd = std::env::current_dir().unwrap();
        let root = find_root(&cwd).unwrap();
        assert!(root.join("Cargo.toml").is_file());
        let files = collect_sources(&root).unwrap();
        // The linter's own sources are in scope (self-check).
        assert!(files
            .iter()
            .any(|f| relative(&root, f) == "crates/lint/src/lexer.rs"));
        // compat shims are not.
        assert!(!files
            .iter()
            .any(|f| relative(&root, f).starts_with("compat/")));
        // crate tests/ directories are not collected.
        assert!(!files.iter().any(|f| relative(&root, f).contains("/tests/")));
    }
}
