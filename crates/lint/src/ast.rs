//! The lightweight AST produced by [`crate::parser`].
//!
//! This is not a full Rust AST: it models exactly the structure the
//! analysis passes need — item nesting with spans, function bodies as
//! statement/expression trees covering calls, method calls, bindings,
//! blocks, control flow, binary operators and casts — and collapses
//! everything else into [`Expr::Other`]. The parser is tolerant: malformed
//! or unmodelled syntax degrades to `Other` nodes with correct line
//! anchoring, never to a parse failure.

/// One parsed source file.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// A top-level or nested item (fn, impl, mod, ...).
#[derive(Debug)]
pub struct Item {
    /// The item's declared name (fn name, mod name, impl type name);
    /// empty for anonymous/unmodelled items.
    pub name: String,
    /// 1-based line of the item's first token (attributes included).
    pub line: u32,
    /// 1-based line of the item's last token.
    pub end_line: u32,
    /// The item carries a `#[test]` / `#[cfg(test)]`-gating attribute.
    pub is_test: bool,
    /// The item is annotated blocking: either the `#[imcf_lint::blocking]`
    /// attribute or the `// imcf-lint: blocking` marker comment directly
    /// above the item (the comment form exists because `register_tool` is
    /// unstable, so the attribute cannot yet compile in-tree).
    pub blocking: bool,
    pub kind: ItemKind,
}

#[derive(Debug)]
pub enum ItemKind {
    /// A function with a body.
    Fn(Block),
    /// A bodyless function signature (trait method declaration).
    FnDecl,
    /// An inline module.
    Mod(Vec<Item>),
    /// An impl block; `name` on the [`Item`] is the self-type's last path
    /// segment (`Foo` for `impl<T> Trait for Foo<T>`).
    Impl(Vec<Item>),
    /// A trait definition with its items.
    Trait(Vec<Item>),
    /// Any other item (struct, enum, use, const, macro_rules, ...).
    Other,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub line: u32,
    pub end_line: u32,
}

#[derive(Debug)]
pub enum Stmt {
    /// `let` binding. `name` is `Some` only for a simple identifier
    /// pattern (`let g = ...`, `let mut g = ...`); destructuring patterns
    /// record `None`.
    Let {
        name: Option<String>,
        /// The ascribed type rendered as a flat string (`"HashMap"` keeps
        /// only path segments), empty when not ascribed.
        ty: String,
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block.
        else_block: Option<Block>,
        line: u32,
    },
    Expr(Expr),
    /// A nested item (fn/struct/... inside a block).
    Item(Item),
}

#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `a`, `a::b::c`, `Self::f`. Turbofish
    /// segments are dropped.
    Path {
        segs: Vec<String>,
        line: u32,
    },
    Lit {
        kind: Lit,
        line: u32,
    },
    /// `callee(args)` where `callee` is an arbitrary expression (almost
    /// always a `Path`).
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    /// `recv.method(args)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `path!(...)` / `path![...]` / `path! {...}`. The body is not
    /// parsed; `first_str` captures the first string literal inside (the
    /// shape `span!("name", ...)` takes).
    Macro {
        segs: Vec<String>,
        first_str: Option<String>,
        line: u32,
    },
    /// `recv.field` (also tuple indices: `t.0`).
    Field {
        recv: Box<Expr>,
        name: String,
        line: u32,
    },
    Unary {
        expr: Box<Expr>,
        line: u32,
    },
    Binary {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `lhs = rhs` and compound assignments.
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `expr as Ty`; `ty` is the target type's flat rendering (`"u32"`).
    Cast {
        expr: Box<Expr>,
        ty: String,
        line: u32,
    },
    /// `&expr` / `&mut expr`.
    Ref {
        expr: Box<Expr>,
        line: u32,
    },
    /// `expr?`.
    Try {
        expr: Box<Expr>,
        line: u32,
    },
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    /// `(a, b, ...)` — parenthesized group or tuple.
    Tuple {
        exprs: Vec<Expr>,
        line: u32,
    },
    /// `[a, b, ...]` array literal (also `[x; n]`).
    Array {
        exprs: Vec<Expr>,
        line: u32,
    },
    /// `Path { field: expr, ..base }`.
    StructLit {
        segs: Vec<String>,
        fields: Vec<Expr>,
        line: u32,
    },
    Block(Block),
    If {
        cond: Box<Expr>,
        then: Block,
        else_: Option<Box<Expr>>,
        line: u32,
    },
    /// `match scrutinee { pat => expr, ... }`; arm patterns are skipped,
    /// arm bodies (and guard expressions) are kept.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Expr>,
        line: u32,
    },
    While {
        cond: Box<Expr>,
        body: Block,
        line: u32,
    },
    Loop {
        body: Block,
        line: u32,
    },
    ForLoop {
        /// Bound variable for a simple identifier pattern.
        pat: Option<String>,
        iter: Box<Expr>,
        body: Block,
        line: u32,
    },
    /// `|args| body` / `move |args| body`; parameters are skipped.
    Closure {
        body: Box<Expr>,
        line: u32,
    },
    /// `return expr` / `break expr` / plain `break`/`continue`.
    Return {
        expr: Option<Box<Expr>>,
        line: u32,
    },
    /// Anything the parser does not model.
    Other {
        line: u32,
    },
}

#[derive(Debug)]
pub enum Lit {
    Int,
    Float,
    Str(String),
    Char,
}

impl Expr {
    /// The expression's anchor line.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Field { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Ref { line, .. }
            | Expr::Try { line, .. }
            | Expr::Index { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::ForLoop { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Return { line, .. }
            | Expr::Other { line } => *line,
            Expr::Block(b) => b.line,
        }
    }

    /// Renders a `Path`/`Field`/`Ref` chain as a dotted identity string
    /// (`self.subscribers` → `"self.subscribers"`); `None` for
    /// expressions that are not simple places.
    pub fn place(&self) -> Option<String> {
        match self {
            Expr::Path { segs, .. } => Some(segs.join("::")),
            Expr::Field { recv, name, .. } => Some(format!("{}.{name}", recv.place()?)),
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
                expr.place()
            }
            _ => None,
        }
    }

    /// Walks this expression and every sub-expression, pre-order.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Macro { .. } | Expr::Other { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk(visit);
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(visit);
                for a in args {
                    a.walk(visit);
                }
            }
            Expr::Field { recv, .. } => recv.walk(visit),
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Ref { expr, .. }
            | Expr::Try { expr, .. }
            | Expr::Closure { body: expr, .. } => expr.walk(visit),
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            Expr::Index { recv, index, .. } => {
                recv.walk(visit);
                index.walk(visit);
            }
            Expr::Tuple { exprs, .. }
            | Expr::Array { exprs, .. }
            | Expr::StructLit { fields: exprs, .. } => {
                for e in exprs {
                    e.walk(visit);
                }
            }
            Expr::Block(b) => b.walk_exprs(visit),
            Expr::If {
                cond, then, else_, ..
            } => {
                cond.walk(visit);
                then.walk_exprs(visit);
                if let Some(e) = else_ {
                    e.walk(visit);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(visit);
                for a in arms {
                    a.walk(visit);
                }
            }
            Expr::While { cond, body, .. } => {
                cond.walk(visit);
                body.walk_exprs(visit);
            }
            Expr::Loop { body, .. } => body.walk_exprs(visit),
            Expr::ForLoop { iter, body, .. } => {
                iter.walk(visit);
                body.walk_exprs(visit);
            }
            Expr::Return { expr, .. } => {
                if let Some(e) = expr {
                    e.walk(visit);
                }
            }
        }
    }
}

impl Block {
    /// Walks every expression in the block (and nested blocks), pre-order.
    /// Nested *items* (fns declared inside the block) are not entered:
    /// they are separate functions analyzed on their own.
    pub fn walk_exprs<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        e.walk(visit);
                    }
                    if let Some(b) = else_block {
                        b.walk_exprs(visit);
                    }
                }
                Stmt::Expr(e) => e.walk(visit),
                Stmt::Item(_) => {}
            }
        }
    }
}

impl Item {
    /// Walks this item and all nested items, pre-order, with the
    /// enclosing impl/trait type name (empty at module level) and whether
    /// any enclosing item was test-gated.
    pub fn walk<'a>(&'a self, owner: &str, in_test: bool, visit: &mut dyn FnMut(&ItemCtx<'a>)) {
        let in_test = in_test || self.is_test;
        visit(&ItemCtx {
            item: self,
            owner: owner.to_string(),
            in_test,
        });
        let nested_owner = match &self.kind {
            ItemKind::Impl(_) | ItemKind::Trait(_) => self.name.as_str(),
            _ => "",
        };
        match &self.kind {
            ItemKind::Mod(items) | ItemKind::Impl(items) | ItemKind::Trait(items) => {
                for item in items {
                    item.walk(nested_owner, in_test, visit);
                }
            }
            ItemKind::Fn(body) => {
                walk_block_items(body, owner, in_test, visit);
            }
            _ => {}
        }
    }
}

fn walk_block_items<'a>(
    block: &'a Block,
    owner: &str,
    in_test: bool,
    visit: &mut dyn FnMut(&ItemCtx<'a>),
) {
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            item.walk(owner, in_test, visit);
        }
    }
}

/// An item paired with its walk context.
pub struct ItemCtx<'a> {
    pub item: &'a Item,
    /// Enclosing impl/trait type name, empty at module level.
    pub owner: String,
    /// The item or an ancestor is test-gated.
    pub in_test: bool,
}
