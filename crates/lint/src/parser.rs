//! A tolerant recursive-descent parser over the [`crate::lexer`] token
//! stream, producing the [`crate::ast`] used by the analysis passes.
//!
//! Design constraints, in order:
//!
//! 1. **Never fail, never hang.** Real workspace sources must always
//!    produce an AST. Unknown constructs degrade to [`Expr::Other`] /
//!    [`ItemKind::Other`] with correct line anchoring; every loop has a
//!    progress guarantee (the cursor always advances on the error path).
//! 2. **Model what the passes read.** Guard scopes, call/method-call
//!    trees, bindings, casts and binary operators are parsed precisely;
//!    types, patterns and macro bodies are skipped with balanced-delimiter
//!    scans.
//! 3. **No external dependencies** — the registry is offline, so `syn` is
//!    not an option (the same constraint that produced `compat/`).
//!
//! Known ambiguities are resolved with the standard restrictions: `{`
//! after a path is a struct literal only outside condition/scrutinee
//! position, and `<`/`>` balance counts the lexer's merged `<<`/`>>`
//! shift tokens as two.

use crate::ast::{Block, Expr, File, Item, ItemKind, Lit, Stmt};
use crate::lexer::{Comment, Lexed, Tok, Token};

/// Parses one lexed file. `comments` supplies the `// imcf-lint: blocking`
/// marker annotations (matched by adjacency to the item's first line).
pub fn parse_file(lexed: &Lexed) -> File {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
        fuel: lexed.tokens.len().saturating_mul(8) + 1024,
    };
    let items = p.parse_items(None);
    let mut file = File { items };
    annotate_blocking(&mut file.items, &lexed.comments);
    file
}

/// Marks items carrying the `// imcf-lint: blocking` marker comment on
/// the line directly above them (the compile-safe spelling of
/// `#[imcf_lint::blocking]`; see `DESIGN.md` §14).
fn annotate_blocking(items: &mut [Item], comments: &[Comment]) {
    for item in items {
        if comments.iter().any(|c| {
            !c.is_doc && c.end_line + 1 >= item.line && c.line <= item.line && {
                let t = c.text.trim_start_matches('/').trim();
                t.starts_with("imcf-lint:") && t["imcf-lint:".len()..].trim() == "blocking"
            }
        }) {
            item.blocking = true;
        }
        match &mut item.kind {
            ItemKind::Mod(nested) | ItemKind::Impl(nested) | ItemKind::Trait(nested) => {
                annotate_blocking(nested, comments);
            }
            _ => {}
        }
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    /// Hard progress bound: decremented on every token consumed or error
    /// recovery step; guarantees termination on adversarial input.
    fuel: usize,
}

/// An attribute's flattened identifier list plus blocking/test analysis.
#[derive(Default)]
struct Attrs {
    is_test: bool,
    blocking: bool,
    first_line: Option<u32>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn prev_line(&self) -> u32 {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        self.fuel = self.fuel.saturating_sub(1);
        t
    }

    fn out_of_fuel(&self) -> bool {
        self.fuel == 0
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.at_ident(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<&'a str> {
        match self.peek() {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Skips tokens until `stop` at delimiter depth 0 (braces, brackets,
    /// parens all balanced; angle depth counts `<<`/`>>` double). The stop
    /// token is not consumed. Used for patterns, types, generics.
    fn skip_until(&mut self, stops: &[&str]) {
        let mut paren = 0i32;
        let mut brace = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        while let Some(tok) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            if let Tok::Punct(p) = tok {
                if paren == 0 && brace == 0 && bracket == 0 && angle <= 0 && stops.contains(p) {
                    return;
                }
                match *p {
                    "(" => paren += 1,
                    ")" => {
                        if paren == 0 {
                            return; // closing an outer delimiter
                        }
                        paren -= 1;
                    }
                    "{" => brace += 1,
                    "}" => {
                        if brace == 0 {
                            return;
                        }
                        brace -= 1;
                    }
                    "[" => bracket += 1,
                    "]" => {
                        if bracket == 0 {
                            return;
                        }
                        bracket -= 1;
                    }
                    "<" => angle += 1,
                    ">" => angle = (angle - 1).max(0),
                    "<<" => angle += 2,
                    ">>" => angle = (angle - 2).max(0),
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Skips a balanced `(...)`, `[...]` or `{...}` group whose opener is
    /// under the cursor. No-op when the cursor is not at an opener.
    fn skip_group(&mut self) {
        let close = match self.peek() {
            Some(Tok::Punct("(")) => ")",
            Some(Tok::Punct("[")) => "]",
            Some(Tok::Punct("{")) => "}",
            _ => return,
        };
        let open = match self.peek() {
            Some(Tok::Punct(p)) => *p,
            _ => unreachable!(),
        };
        self.bump();
        let mut depth = 1i32;
        while let Some(tok) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            if let Tok::Punct(p) = tok {
                if *p == open {
                    depth += 1;
                } else if *p == close {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
            }
            self.bump();
        }
    }

    /// Skips a generics list whose `<` is under the cursor.
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        self.bump();
        let mut depth = 1i32;
        while let Some(tok) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            match tok {
                Tok::Punct("<") => depth += 1,
                Tok::Punct("<<") => depth += 2,
                Tok::Punct(">") => depth -= 1,
                Tok::Punct(">>") => depth -= 2,
                Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => {
                    self.skip_group();
                    continue;
                }
                _ => {}
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    /// Parses items until `}` (inside a mod/impl/trait body) or EOF.
    fn parse_items(&mut self, closing: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.out_of_fuel() || self.peek().is_none() {
                return items;
            }
            if let Some(close) = closing {
                if self.at_punct(close) {
                    return items;
                }
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                // No progress: recover by force-consuming one token.
                self.bump();
            }
        }
    }

    /// Parses one item, or `None` when the cursor is not at something
    /// item-shaped (the caller recovers).
    fn parse_item(&mut self) -> Option<Item> {
        let start_line = self.line();
        let attrs = self.parse_attrs();
        let line = attrs.first_line.unwrap_or(start_line);

        // Visibility.
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_group(); // pub(crate), pub(super), pub(in path)
        }
        // Leading fn qualifiers.
        while self.at_ident("const") || self.at_ident("async") || self.at_ident("unsafe") {
            // `const` might start a const *item*; only treat it as a
            // qualifier when `fn` follows (possibly after more qualifiers).
            if self.at_ident("const")
                && !matches!(self.peek_at(1), Some(Tok::Ident(k)) if k == "fn" || k == "unsafe" || k == "extern" || k == "async")
            {
                break;
            }
            self.bump();
        }
        if self.eat_ident("extern") {
            if matches!(self.peek(), Some(Tok::Str(_))) {
                self.bump(); // ABI string
            }
            if self.eat_ident("crate") {
                self.skip_until(&[";"]);
                self.eat_punct(";");
                return Some(self.finish_item(String::new(), line, attrs, ItemKind::Other));
            }
            if self.at_punct("{") {
                // extern block: treat contents as items.
                self.bump();
                let items = self.parse_items(Some("}"));
                self.eat_punct("}");
                return Some(self.finish_item(String::new(), line, attrs, ItemKind::Mod(items)));
            }
        }

        let kw = self.ident_text()?;
        match kw {
            "fn" => {
                self.bump();
                let name = match self.peek() {
                    Some(Tok::Ident(n)) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                self.skip_generics();
                if self.at_punct("(") {
                    self.skip_group();
                }
                // Return type + where clause: skip to the body or `;`.
                self.skip_until(&["{", ";"]);
                if self.at_punct(";") {
                    self.bump();
                    return Some(self.finish_item(name, line, attrs, ItemKind::FnDecl));
                }
                let body = self.parse_block();
                Some(self.finish_item(name, line, attrs, ItemKind::Fn(body)))
            }
            "mod" => {
                self.bump();
                let name = match self.peek() {
                    Some(Tok::Ident(n)) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                if self.at_punct("{") {
                    self.bump();
                    let items = self.parse_items(Some("}"));
                    self.eat_punct("}");
                    Some(self.finish_item(name, line, attrs, ItemKind::Mod(items)))
                } else {
                    self.eat_punct(";");
                    Some(self.finish_item(name, line, attrs, ItemKind::Other))
                }
            }
            "impl" => {
                self.bump();
                self.skip_generics();
                // Everything up to `{` is the (trait-for-)type header;
                // the self type is the first path segment after `for`
                // when present, else the first segment of the header.
                let mut type_name = String::new();
                let mut after_for = false;
                let mut found_for = false;
                while let Some(tok) = self.peek() {
                    match tok {
                        Tok::Punct("{") => break,
                        Tok::Punct(";") => {
                            // `impl Trait for Type;` is not real Rust;
                            // bail tolerantly.
                            self.bump();
                            return Some(self.finish_item(type_name, line, attrs, ItemKind::Other));
                        }
                        Tok::Ident(w) if w == "for" => {
                            after_for = true;
                            found_for = true;
                            type_name.clear();
                            self.bump();
                        }
                        Tok::Ident(w) if w == "where" => {
                            self.skip_until(&["{"]);
                            break;
                        }
                        Tok::Ident(w) => {
                            if type_name.is_empty() && (!found_for || after_for) {
                                type_name = w.clone();
                            }
                            self.bump();
                            if self.at_punct("<") {
                                self.skip_generics();
                            }
                        }
                        _ => {
                            self.bump();
                        }
                    }
                    if self.out_of_fuel() {
                        break;
                    }
                }
                if self.at_punct("{") {
                    self.bump();
                    let items = self.parse_items(Some("}"));
                    self.eat_punct("}");
                    Some(self.finish_item(type_name, line, attrs, ItemKind::Impl(items)))
                } else {
                    Some(self.finish_item(type_name, line, attrs, ItemKind::Other))
                }
            }
            "trait" => {
                self.bump();
                let name = match self.peek() {
                    Some(Tok::Ident(n)) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                self.skip_until(&["{", ";"]);
                if self.at_punct("{") {
                    self.bump();
                    let items = self.parse_items(Some("}"));
                    self.eat_punct("}");
                    Some(self.finish_item(name, line, attrs, ItemKind::Trait(items)))
                } else {
                    self.eat_punct(";");
                    Some(self.finish_item(name, line, attrs, ItemKind::Other))
                }
            }
            "struct" | "enum" | "union" => {
                self.bump();
                let name = match self.peek() {
                    Some(Tok::Ident(n)) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                self.skip_until(&["{", ";", "("]);
                match self.peek() {
                    Some(Tok::Punct("{")) | Some(Tok::Punct("(")) => {
                        self.skip_group();
                        self.eat_punct(";"); // tuple struct trailing `;`
                    }
                    _ => {
                        self.eat_punct(";");
                    }
                }
                Some(self.finish_item(name, line, attrs, ItemKind::Other))
            }
            "use" | "type" | "static" | "const" => {
                let is_static = kw == "static";
                self.bump();
                let mutable = is_static && self.eat_ident("mut");
                let name = match self.peek() {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => String::new(),
                };
                // Skip to `;`, balancing braces (const exprs with blocks).
                self.skip_until(&[";"]);
                self.eat_punct(";");
                let _ = mutable;
                Some(self.finish_item(name, line, attrs, ItemKind::Other))
            }
            "macro_rules" => {
                self.bump();
                self.eat_punct("!");
                let name = match self.peek() {
                    Some(Tok::Ident(n)) => {
                        let n = n.clone();
                        self.bump();
                        n
                    }
                    _ => String::new(),
                };
                self.skip_group(); // the `{ ... }` rules body, untouched
                Some(self.finish_item(name, line, attrs, ItemKind::Other))
            }
            _ => None,
        }
    }

    fn finish_item(&self, name: String, line: u32, attrs: Attrs, kind: ItemKind) -> Item {
        Item {
            name,
            line,
            end_line: self.prev_line(),
            is_test: attrs.is_test,
            blocking: attrs.blocking,
            kind,
        }
    }

    /// Parses `#[...]` attributes (outer and inner), flattening each to
    /// its identifier list for test/blocking classification.
    fn parse_attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        loop {
            if !self.at_punct("#") {
                return out;
            }
            let line = self.line();
            self.bump();
            self.eat_punct("!"); // inner attribute
            if !self.at_punct("[") {
                return out;
            }
            out.first_line.get_or_insert(line);
            // Collect idents to the matching `]`.
            self.bump();
            let mut depth = 1i32;
            let mut idents: Vec<&str> = Vec::new();
            while let Some(tok) = self.peek() {
                match tok {
                    Tok::Punct("[") => depth += 1,
                    Tok::Punct("]") => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                    }
                    Tok::Ident(s) => idents.push(s.as_str()),
                    _ => {}
                }
                self.bump();
                if self.out_of_fuel() {
                    break;
                }
            }
            let has = |w: &str| idents.contains(&w);
            if has("test") && !has("not") {
                out.is_test = true;
            }
            if idents.first() == Some(&"imcf_lint") && has("blocking") {
                out.blocking = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Blocks and statements
    // ------------------------------------------------------------------

    /// Parses a `{ ... }` block whose opening brace is under the cursor.
    /// Tolerant: if the cursor is not at `{`, returns an empty block.
    fn parse_block(&mut self) -> Block {
        let line = self.line();
        if !self.eat_punct("{") {
            return Block {
                stmts: Vec::new(),
                line,
                end_line: line,
            };
        }
        let mut stmts = Vec::new();
        loop {
            if self.out_of_fuel() || self.peek().is_none() {
                break;
            }
            if self.at_punct("}") {
                self.bump();
                break;
            }
            if self.eat_punct(";") {
                continue;
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                stmts.push(stmt);
            }
            if self.pos == before {
                self.bump(); // recovery: always progress
            }
        }
        Block {
            stmts,
            line,
            end_line: self.prev_line(),
        }
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        // Nested items first (they share keywords with nothing else).
        if let Some(kw) = self.ident_text() {
            let itemish = matches!(
                kw,
                "fn" | "struct"
                    | "enum"
                    | "union"
                    | "trait"
                    | "impl"
                    | "mod"
                    | "use"
                    | "type"
                    | "static"
                    | "macro_rules"
            ) || (kw == "const"
                && matches!(self.peek_at(1), Some(Tok::Ident(n)) if n != "fn")
                && !matches!(self.peek_at(1), Some(Tok::Punct(_))))
                || (kw == "pub");
            // `const fn` nested is still an item; `const { ... }` blocks
            // and `const` closures are expressions — the parse_item call
            // below handles `const fn` via qualifier logic.
            if itemish
                || matches!(kw, "const" if matches!(self.peek_at(1), Some(Tok::Ident(n)) if n == "fn"))
            {
                let before = self.pos;
                if let Some(item) = self.parse_item() {
                    return Some(Stmt::Item(item));
                }
                self.pos = before;
            }
        }
        if self.at_punct("#") {
            // Statement-level attribute (e.g. `#[allow]` on a stmt):
            // parse and discard, then parse the statement it decorates.
            let _ = self.parse_attrs();
            return self.parse_stmt();
        }
        if self.at_ident("let") {
            return Some(self.parse_let());
        }
        let expr = self.parse_expr(0, true);
        self.eat_punct(";");
        Some(Stmt::Expr(expr))
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
        self.eat_ident("mut");
        let name = match self.peek() {
            Some(Tok::Ident(n))
                if matches!(
                    self.peek_at(1),
                    Some(Tok::Punct("=")) | Some(Tok::Punct(":")) | Some(Tok::Punct(";"))
                ) || matches!(self.peek_at(1), Some(Tok::Ident(k)) if k == "else") =>
            {
                let n = n.clone();
                self.bump();
                Some(n)
            }
            _ => {
                // Destructuring or ref pattern: skip it.
                self.skip_until(&["=", ";", ":"]);
                None
            }
        };
        let mut ty = String::new();
        if self.eat_punct(":") {
            let ty_start = self.pos;
            self.skip_type();
            ty = self.toks[ty_start..self.pos]
                .iter()
                .filter_map(|t| match &t.tok {
                    Tok::Ident(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .join(" ");
        }
        let mut init = None;
        let mut else_block = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(0, true));
            if self.eat_ident("else") {
                else_block = Some(self.parse_block());
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            name,
            ty,
            init,
            else_block,
            line,
        }
    }

    /// Skips a type: path segments, references, balanced groups and
    /// generics, stopping at `=`, `;`, `,`, `)` or `{` at depth 0.
    fn skip_type(&mut self) {
        let mut depth_paren = 0i32;
        let mut depth_bracket = 0i32;
        let mut angle = 0i32;
        while let Some(tok) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            match tok {
                Tok::Punct("=") | Tok::Punct(";") | Tok::Punct("{")
                    if depth_paren == 0 && depth_bracket == 0 && angle <= 0 =>
                {
                    return;
                }
                Tok::Punct(",") if depth_paren == 0 && depth_bracket == 0 && angle <= 0 => return,
                Tok::Punct("(") => depth_paren += 1,
                Tok::Punct(")") => {
                    if depth_paren == 0 {
                        return;
                    }
                    depth_paren -= 1;
                }
                Tok::Punct("[") => depth_bracket += 1,
                Tok::Punct("]") => {
                    if depth_bracket == 0 {
                        return;
                    }
                    depth_bracket -= 1;
                }
                Tok::Punct("<") => angle += 1,
                Tok::Punct("<<") => angle += 2,
                Tok::Punct(">") => angle -= 1,
                Tok::Punct(">>") => angle -= 2,
                _ => {}
            }
            self.bump();
        }
    }

    // ------------------------------------------------------------------
    // Expressions (Pratt)
    // ------------------------------------------------------------------

    /// Parses an expression with the given minimum binding power.
    /// `struct_ok` gates the `Path { ... }` struct-literal production
    /// (false in condition/scrutinee/for-iterator position).
    fn parse_expr(&mut self, min_bp: u8, struct_ok: bool) -> Expr {
        let mut lhs = self.parse_prefix(struct_ok);
        loop {
            if self.out_of_fuel() {
                return lhs;
            }
            // Postfix operators bind tightest.
            match self.peek() {
                Some(Tok::Punct(".")) => {
                    let line = self.line();
                    match (self.peek_at(1), self.peek_at(2)) {
                        (Some(Tok::Ident(name)), _) => {
                            let name = name.clone();
                            self.bump(); // .
                            self.bump(); // ident
                            if self.at_punct("::") {
                                // turbofish: .parse::<usize>(
                                self.bump();
                                self.skip_generics();
                            }
                            if self.at_punct("(") {
                                let args = self.parse_call_args();
                                lhs = Expr::MethodCall {
                                    recv: Box::new(lhs),
                                    method: name,
                                    args,
                                    line,
                                };
                            } else {
                                lhs = Expr::Field {
                                    recv: Box::new(lhs),
                                    name,
                                    line,
                                };
                            }
                            continue;
                        }
                        (Some(Tok::Int(n)), _) | (Some(Tok::Float(n)), _) => {
                            let n = n.clone();
                            self.bump();
                            self.bump();
                            lhs = Expr::Field {
                                recv: Box::new(lhs),
                                name: n,
                                line,
                            };
                            continue;
                        }
                        _ => {}
                    }
                }
                Some(Tok::Punct("?")) => {
                    let line = self.line();
                    self.bump();
                    lhs = Expr::Try {
                        expr: Box::new(lhs),
                        line,
                    };
                    continue;
                }
                Some(Tok::Punct("(")) => {
                    let line = self.line();
                    let args = self.parse_call_args();
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        line,
                    };
                    continue;
                }
                Some(Tok::Punct("[")) => {
                    let line = self.line();
                    self.bump();
                    let index = self.parse_expr(0, true);
                    // Tolerate `a[b; c]` / trailing junk.
                    self.skip_until(&["]"]);
                    self.eat_punct("]");
                    lhs = Expr::Index {
                        recv: Box::new(lhs),
                        index: Box::new(index),
                        line,
                    };
                    continue;
                }
                Some(Tok::Ident(kw)) if kw == "as" => {
                    let line = self.line();
                    self.bump();
                    let ty_start = self.pos;
                    self.skip_cast_type();
                    let ty = self.toks[ty_start..self.pos]
                        .iter()
                        .filter_map(|t| match &t.tok {
                            Tok::Ident(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect::<Vec<_>>()
                        .join(" ");
                    lhs = Expr::Cast {
                        expr: Box::new(lhs),
                        ty,
                        line,
                    };
                    continue;
                }
                _ => {}
            }
            // Binary / assignment operators.
            let (op, bp, right_bp, is_assign) = match self.peek() {
                Some(Tok::Punct(p)) => match *p {
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                        (*p, 2u8, 1u8, true)
                    }
                    ".." | "..=" => (*p, 3, 4, false),
                    "||" => (*p, 5, 6, false),
                    "&&" => (*p, 7, 8, false),
                    "==" | "!=" | "<" | ">" | "<=" | ">=" => (*p, 9, 10, false),
                    "|" => (*p, 11, 12, false),
                    "^" => (*p, 13, 14, false),
                    "&" => (*p, 15, 16, false),
                    "<<" | ">>" => (*p, 17, 18, false),
                    "+" | "-" => (*p, 19, 20, false),
                    "*" | "/" | "%" => (*p, 21, 22, false),
                    _ => break,
                },
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            let line = self.line();
            self.bump();
            // Open ranges (`0..`): stop if no expression follows.
            if (op == ".." || op == "..=") && self.range_rhs_absent() {
                lhs = Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(Expr::Other { line }),
                    line,
                };
                continue;
            }
            let rhs = self.parse_expr(right_bp, struct_ok);
            lhs = if is_assign {
                Expr::Assign {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            } else {
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                }
            };
        }
        lhs
    }

    fn range_rhs_absent(&self) -> bool {
        matches!(
            self.peek(),
            None | Some(Tok::Punct(")"))
                | Some(Tok::Punct("]"))
                | Some(Tok::Punct("}"))
                | Some(Tok::Punct(","))
                | Some(Tok::Punct(";"))
                | Some(Tok::Punct("{"))
                | Some(Tok::Punct("="))
        )
    }

    /// `as`-cast target type: a path with generics / primitive, stopping
    /// before any operator that continues the expression.
    fn skip_cast_type(&mut self) {
        // &, *const/*mut prefixes
        while self.at_punct("&") || self.at_punct("*") {
            self.bump();
            self.eat_ident("const");
            self.eat_ident("mut");
        }
        loop {
            match self.peek() {
                Some(Tok::Ident(_)) => {
                    self.bump();
                    if self.at_punct("<") {
                        self.skip_generics();
                    }
                    if self.at_punct("::") {
                        self.bump();
                        continue;
                    }
                    return;
                }
                Some(Tok::Punct("(")) => {
                    self.skip_group();
                    return;
                }
                _ => return,
            }
        }
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            if self.out_of_fuel() || self.peek().is_none() {
                return args;
            }
            if self.eat_punct(")") {
                return args;
            }
            if self.eat_punct(",") {
                continue;
            }
            let before = self.pos;
            args.push(self.parse_expr(0, true));
            if self.pos == before {
                self.bump();
            }
        }
    }

    fn parse_prefix(&mut self, struct_ok: bool) -> Expr {
        let line = self.line();
        match self.peek() {
            None => Expr::Other { line },
            Some(Tok::Int(_)) => {
                self.bump();
                Expr::Lit {
                    kind: Lit::Int,
                    line,
                }
            }
            Some(Tok::Float(_)) => {
                self.bump();
                Expr::Lit {
                    kind: Lit::Float,
                    line,
                }
            }
            Some(Tok::Str(s)) => {
                let s = s.clone();
                self.bump();
                Expr::Lit {
                    kind: Lit::Str(s),
                    line,
                }
            }
            Some(Tok::Char) => {
                self.bump();
                Expr::Lit {
                    kind: Lit::Char,
                    line,
                }
            }
            Some(Tok::Lifetime(_)) => {
                // Loop label: `'outer: loop { ... }`.
                self.bump();
                self.eat_punct(":");
                self.parse_prefix(struct_ok)
            }
            Some(Tok::Punct("&")) => {
                self.bump();
                self.eat_ident("mut");
                let expr = self.parse_expr(23, struct_ok);
                Expr::Ref {
                    expr: Box::new(expr),
                    line,
                }
            }
            Some(Tok::Punct("&&")) => {
                // `&&x` lexes as one token: double reference.
                self.bump();
                self.eat_ident("mut");
                let expr = self.parse_expr(23, struct_ok);
                Expr::Ref {
                    expr: Box::new(Expr::Ref {
                        expr: Box::new(expr),
                        line,
                    }),
                    line,
                }
            }
            Some(Tok::Punct("*")) | Some(Tok::Punct("!")) | Some(Tok::Punct("-")) => {
                self.bump();
                let expr = self.parse_expr(23, struct_ok);
                Expr::Unary {
                    expr: Box::new(expr),
                    line,
                }
            }
            Some(Tok::Punct("(")) => {
                self.bump();
                let mut exprs = Vec::new();
                loop {
                    if self.out_of_fuel() || self.peek().is_none() {
                        break;
                    }
                    if self.eat_punct(")") {
                        break;
                    }
                    if self.eat_punct(",") {
                        continue;
                    }
                    let before = self.pos;
                    exprs.push(self.parse_expr(0, true));
                    if self.pos == before {
                        self.bump();
                    }
                }
                Expr::Tuple { exprs, line }
            }
            Some(Tok::Punct("[")) => {
                self.bump();
                let mut exprs = Vec::new();
                loop {
                    if self.out_of_fuel() || self.peek().is_none() {
                        break;
                    }
                    if self.eat_punct("]") {
                        break;
                    }
                    if self.eat_punct(",") || self.eat_punct(";") {
                        continue;
                    }
                    let before = self.pos;
                    exprs.push(self.parse_expr(0, true));
                    if self.pos == before {
                        self.bump();
                    }
                }
                Expr::Array { exprs, line }
            }
            Some(Tok::Punct("{")) => Expr::Block(self.parse_block()),
            Some(Tok::Punct("|")) | Some(Tok::Punct("||")) => self.parse_closure(line),
            Some(Tok::Punct("..")) | Some(Tok::Punct("..=")) => {
                // Prefix range `..n`.
                self.bump();
                if self.range_rhs_absent() {
                    Expr::Other { line }
                } else {
                    let rhs = self.parse_expr(4, struct_ok);
                    Expr::Binary {
                        op: "..",
                        lhs: Box::new(Expr::Other { line }),
                        rhs: Box::new(rhs),
                        line,
                    }
                }
            }
            Some(Tok::Punct("::")) => {
                // Leading `::path`.
                self.bump();
                self.parse_path_expr(line, struct_ok)
            }
            Some(Tok::Punct("#")) => {
                // Expression-position attribute (rare); skip it.
                let _ = self.parse_attrs();
                self.parse_prefix(struct_ok)
            }
            Some(Tok::Ident(kw)) => match kw.as_str() {
                "if" => self.parse_if(line),
                "match" => self.parse_match(line),
                "while" => {
                    self.bump();
                    self.eat_ident("let");
                    // `while let pat = expr` — skip the pattern to `=`.
                    // For a plain `while cond`, this is a no-op because
                    // we only skip when `let` was present.
                    let cond = self.parse_cond();
                    let body = self.parse_block();
                    Expr::While {
                        cond: Box::new(cond),
                        body,
                        line,
                    }
                }
                "loop" => {
                    self.bump();
                    let body = self.parse_block();
                    Expr::Loop { body, line }
                }
                "for" => {
                    self.bump();
                    let pat = match (self.peek(), self.peek_at(1)) {
                        (Some(Tok::Ident(n)), Some(Tok::Ident(k))) if k == "in" && n != "mut" => {
                            let n = n.clone();
                            self.bump();
                            Some(n)
                        }
                        _ => {
                            // Complex pattern: skip to `in`.
                            while let Some(tok) = self.peek() {
                                if matches!(tok, Tok::Ident(k) if k == "in") {
                                    break;
                                }
                                if matches!(tok, Tok::Punct("{")) {
                                    break; // malformed; bail
                                }
                                self.bump();
                                if self.out_of_fuel() {
                                    break;
                                }
                            }
                            None
                        }
                    };
                    self.eat_ident("in");
                    let iter = self.parse_expr(0, false);
                    let body = self.parse_block();
                    Expr::ForLoop {
                        pat,
                        iter: Box::new(iter),
                        body,
                        line,
                    }
                }
                "unsafe" => {
                    self.bump();
                    Expr::Block(self.parse_block())
                }
                "return" | "break" => {
                    self.bump();
                    // `break 'label` labels.
                    if matches!(self.peek(), Some(Tok::Lifetime(_))) {
                        self.bump();
                    }
                    let expr = if matches!(
                        self.peek(),
                        None | Some(Tok::Punct(";"))
                            | Some(Tok::Punct("}"))
                            | Some(Tok::Punct(")"))
                            | Some(Tok::Punct(","))
                    ) {
                        None
                    } else {
                        Some(Box::new(self.parse_expr(0, struct_ok)))
                    };
                    Expr::Return { expr, line }
                }
                "continue" => {
                    self.bump();
                    if matches!(self.peek(), Some(Tok::Lifetime(_))) {
                        self.bump();
                    }
                    Expr::Return { expr: None, line }
                }
                "move" => {
                    self.bump();
                    if self.at_punct("|") || self.at_punct("||") {
                        self.parse_closure(line)
                    } else {
                        // `move { ... }` async-style block (not used
                        // in-tree); treat as block.
                        Expr::Block(self.parse_block())
                    }
                }
                "let" => {
                    // `let` in expression position: `if let`-chain member
                    // (`cond && let Some(x) = y`). Skip pattern, parse rhs.
                    self.bump();
                    self.skip_until(&["="]);
                    if self.eat_punct("=") {
                        let rhs = self.parse_expr(9, false);
                        return rhs;
                    }
                    Expr::Other { line }
                }
                _ => self.parse_path_expr(line, struct_ok),
            },
            Some(Tok::Punct(_)) => {
                // Unknown operator in prefix position: consume and mark.
                self.bump();
                Expr::Other { line }
            }
        }
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        // `||` is the whole empty parameter list; `|` opens one.
        if self.at_punct("||") {
            self.bump();
        } else {
            self.bump(); // opening |
            let mut depth = 0i32;
            while let Some(tok) = self.peek() {
                match tok {
                    Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => {
                        self.skip_group();
                        continue;
                    }
                    Tok::Punct("<") => depth += 1,
                    Tok::Punct(">") => depth -= 1,
                    Tok::Punct("|") if depth <= 0 => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                self.bump();
                if self.out_of_fuel() {
                    break;
                }
            }
        }
        // Optional `-> Ty` return annotation (body must then be a block).
        if self.eat_punct("->") {
            self.skip_until(&["{"]);
        }
        let body = self.parse_expr(0, true);
        Expr::Closure {
            body: Box::new(body),
            line,
        }
    }

    /// Condition position (`if`/`while` head): struct literals are off;
    /// `let` patterns in `if let`/`while let` have already been consumed
    /// or are handled by skipping to `=`.
    fn parse_cond(&mut self) -> Expr {
        // If a pattern is under the cursor (we came from `if let`/`while
        // let`), skip it to `=`.  Heuristic: conditions never start with
        // an uppercase path followed by `(` or `::`... — instead of
        // guessing, the callers consume `let` and we skip to `=` when an
        // `=` occurs before any `{` at depth 0.
        let save = self.pos;
        let mut depth = 0i32;
        let mut saw_eq = false;
        let mut k = self.pos;
        while let Some(t) = self.toks.get(k) {
            match &t.tok {
                Tok::Punct("(") | Tok::Punct("[") => depth += 1,
                Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
                Tok::Punct("{") if depth == 0 => break,
                Tok::Punct("=") if depth == 0 => {
                    saw_eq = true;
                    break;
                }
                Tok::Punct(";") => break,
                _ => {}
            }
            k += 1;
        }
        if saw_eq {
            self.skip_until(&["="]);
            if !self.eat_punct("=") {
                self.pos = save;
            }
        }
        self.parse_expr(0, false)
    }

    fn parse_if(&mut self, line: u32) -> Expr {
        self.bump(); // if
        self.eat_ident("let");
        let cond = self.parse_cond();
        let then = self.parse_block();
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                let l = self.line();
                Some(Box::new(self.parse_if(l)))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            else_,
            line,
        }
    }

    fn parse_match(&mut self, line: u32) -> Expr {
        self.bump(); // match
        let scrutinee = self.parse_expr(0, false);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            loop {
                if self.out_of_fuel() || self.peek().is_none() {
                    break;
                }
                if self.eat_punct("}") {
                    break;
                }
                // Pattern (and optional `if` guard) up to `=>`.
                self.skip_until(&["=>"]);
                if !self.eat_punct("=>") {
                    // Malformed arm: recover to `}`.
                    self.skip_until(&["}"]);
                    self.eat_punct("}");
                    break;
                }
                let before = self.pos;
                arms.push(self.parse_expr(0, true));
                if self.pos == before {
                    self.bump();
                }
                self.eat_punct(",");
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    /// Parses a path expression and its immediate struct-literal / macro /
    /// call continuation.
    fn parse_path_expr(&mut self, line: u32, struct_ok: bool) -> Expr {
        let mut segs: Vec<String> = Vec::new();
        while let Some(Tok::Ident(s)) = self.peek() {
            segs.push(s.clone());
            self.bump();
            if self.at_punct("::") {
                self.bump();
                if self.at_punct("<") {
                    // Turbofish `Path::<T>`: skip, continue path.
                    self.skip_generics();
                    if self.at_punct("::") {
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return Expr::Other { line };
        }
        // Macro invocation.
        if self.at_punct("!")
            && matches!(
                self.peek_at(1),
                Some(Tok::Punct("(")) | Some(Tok::Punct("[")) | Some(Tok::Punct("{"))
            )
        {
            self.bump(); // !
            let first_str = self.capture_macro_body();
            return Expr::Macro {
                segs,
                first_str,
                line,
            };
        }
        // Struct literal: `Path { ... }` when allowed and plausible.
        if struct_ok && self.at_punct("{") && struct_literal_plausible(&segs) {
            let fields = self.parse_struct_lit_body();
            return Expr::StructLit { segs, fields, line };
        }
        Expr::Path { segs, line }
    }

    /// Captures a macro body group, returning the first string literal
    /// inside it.
    fn capture_macro_body(&mut self) -> Option<String> {
        let close = match self.peek() {
            Some(Tok::Punct("(")) => ")",
            Some(Tok::Punct("[")) => "]",
            Some(Tok::Punct("{")) => "}",
            _ => return None,
        };
        let open = match self.peek() {
            Some(Tok::Punct(p)) => *p,
            _ => return None,
        };
        self.bump();
        let mut depth = 1i32;
        let mut first_str = None;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct(p) if *p == open => depth += 1,
                Tok::Punct(p) if *p == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return first_str;
                    }
                }
                Tok::Str(s) if first_str.is_none() => first_str = Some(s.clone()),
                _ => {}
            }
            self.bump();
            if self.out_of_fuel() {
                break;
            }
        }
        first_str
    }

    fn parse_struct_lit_body(&mut self) -> Vec<Expr> {
        let mut fields = Vec::new();
        if !self.eat_punct("{") {
            return fields;
        }
        loop {
            if self.out_of_fuel() || self.peek().is_none() {
                return fields;
            }
            if self.eat_punct("}") {
                return fields;
            }
            if self.eat_punct(",") {
                continue;
            }
            if self.eat_punct("..") {
                // Functional update base.
                let before = self.pos;
                fields.push(self.parse_expr(0, true));
                if self.pos == before {
                    self.bump();
                }
                continue;
            }
            // `field: expr` or shorthand `field`.
            if let Some(Tok::Ident(_)) = self.peek() {
                if self.peek_at(1) == Some(&Tok::Punct(":")) {
                    self.bump();
                    self.bump();
                    let before = self.pos;
                    fields.push(self.parse_expr(0, true));
                    if self.pos == before {
                        self.bump();
                    }
                    continue;
                }
            }
            let before = self.pos;
            fields.push(self.parse_expr(0, true));
            if self.pos == before {
                self.bump();
            }
        }
    }
}

/// `Foo { ... }` is a struct literal when the path's last segment looks
/// like a type (uppercase initial or `Self`); lowercase paths before `{`
/// are almost always condition/block boundaries the keyword productions
/// already handled.
fn struct_literal_plausible(segs: &[String]) -> bool {
    segs.last()
        .is_some_and(|s| s == "Self" || s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        parse_file(&lex(src))
    }

    fn fns(file: &File) -> Vec<(&str, bool)> {
        let mut out = Vec::new();
        for item in &file.items {
            item.walk("", false, &mut |ctx| {
                if matches!(ctx.item.kind, ItemKind::Fn(_) | ItemKind::FnDecl) {
                    out.push((
                        Box::leak(ctx.item.name.clone().into_boxed_str()) as &str,
                        ctx.in_test,
                    ));
                }
            });
        }
        out
    }

    fn first_fn_body(file: &File) -> &Block {
        fn find(items: &[Item]) -> Option<&Block> {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(b) => return Some(b),
                    ItemKind::Mod(n) | ItemKind::Impl(n) | ItemKind::Trait(n) => {
                        if let Some(b) = find(n) {
                            return Some(b);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&file.items).expect("no fn")
    }

    /// Collects all method-call names in the first fn body.
    fn method_calls(file: &File) -> Vec<String> {
        let mut out = Vec::new();
        first_fn_body(file).walk_exprs(&mut |e| {
            if let Expr::MethodCall { method, .. } = e {
                out.push(method.clone());
            }
        });
        out
    }

    #[test]
    fn items_with_spans_and_nesting() {
        let f = parse(
            "mod outer {\n  impl Widget {\n    pub fn poke(&self) {}\n  }\n  fn free() {}\n}\nfn top() {}\n",
        );
        assert_eq!(f.items.len(), 2);
        assert_eq!(f.items[0].name, "outer");
        assert_eq!(f.items[0].line, 1);
        assert_eq!(f.items[0].end_line, 6);
        let names: Vec<_> = fns(&f).into_iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["poke", "free", "top"]);
    }

    #[test]
    fn impl_type_name_with_trait_and_generics() {
        let f =
            parse("impl<T: Clone> Iterator for Chunks<T> where T: Send { fn next(&mut self) {} }");
        assert_eq!(f.items[0].name, "Chunks");
        let f = parse("impl Widget { fn f() {} }");
        assert_eq!(f.items[0].name, "Widget");
    }

    #[test]
    fn test_attributes_propagate() {
        let f = parse(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { a.unwrap(); }\n}\nfn lib() {}\n",
        );
        let got = fns(&f);
        assert_eq!(got[0], ("t", true));
        assert_eq!(got[1], ("lib", false));
    }

    #[test]
    fn method_call_chain_and_guard_shape() {
        let f = parse("fn f(&self) { let g = self.queue.lock().unwrap(); g.push(1); }");
        // walk() is pre-order, so the outermost call (`unwrap`) comes first.
        assert_eq!(method_calls(&f), vec!["unwrap", "lock", "push"]);
        let body = first_fn_body(&f);
        match &body.stmts[0] {
            Stmt::Let { name, init, .. } => {
                assert_eq!(name.as_deref(), Some("g"));
                let init = init.as_ref().unwrap();
                // unwrap(lock(self.queue))
                match init {
                    Expr::MethodCall { method, recv, .. } => {
                        assert_eq!(method, "unwrap");
                        match recv.as_ref() {
                            Expr::MethodCall { method, recv, .. } => {
                                assert_eq!(method, "lock");
                                assert_eq!(recv.place().as_deref(), Some("self.queue"));
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn struct_literal_vs_block_disambiguation() {
        // `if x { ... }`: `x` path, block — not a struct literal.
        let f = parse("fn f(x: bool) { if x { g(); } }");
        let body = first_fn_body(&f);
        assert!(matches!(&body.stmts[0], Stmt::Expr(Expr::If { .. })));
        // `Point { x: 1 }` in binding position is a struct literal.
        let f = parse("fn f() { let p = Point { x: 1, y: 2 }; }");
        match &first_fn_body(&f).stmts[0] {
            Stmt::Let { init, .. } => {
                assert!(
                    matches!(init.as_ref().unwrap(), Expr::StructLit { segs, fields, .. }
                    if segs == &["Point"] && fields.len() == 2)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn match_arms_are_parsed() {
        let f = parse("fn f(x: u8) -> u8 { match x { 0 => a.lock(), _ if x > 2 => b(), _ => 0 } }");
        let mut arms = 0;
        first_fn_body(&f).walk_exprs(&mut |e| {
            if let Expr::Match { arms: a, .. } = e {
                arms = a.len();
            }
        });
        assert_eq!(arms, 3);
        assert!(method_calls(&f).contains(&"lock".to_string()));
    }

    #[test]
    fn closures_and_for_loops() {
        let f = parse(
            "fn f(v: Vec<u32>) { let t: Vec<u32> = v.iter().map(|x| x + 1).collect(); for item in t { use_it(item); } }",
        );
        let calls = method_calls(&f);
        assert!(calls.contains(&"map".to_string()));
        let mut for_pat = None;
        first_fn_body(&f).walk_exprs(&mut |e| {
            if let Expr::ForLoop { pat, .. } = e {
                for_pat = pat.clone();
            }
        });
        assert_eq!(for_pat.as_deref(), Some("item"));
    }

    #[test]
    fn casts_record_target_type() {
        let f = parse("fn f(n: u64) -> u32 { (n + 1) as u32 }");
        let mut cast_ty = None;
        first_fn_body(&f).walk_exprs(&mut |e| {
            if let Expr::Cast { ty, .. } = e {
                cast_ty = Some(ty.clone());
            }
        });
        assert_eq!(cast_ty.as_deref(), Some("u32"));
    }

    #[test]
    fn macro_first_string_is_captured() {
        let f = parse("fn f() { imcf_telemetry::span!(\"planner.slot_micros\", 12); }");
        let mut seen = None;
        first_fn_body(&f).walk_exprs(&mut |e| {
            if let Expr::Macro {
                segs, first_str, ..
            } = e
            {
                seen = Some((segs.clone(), first_str.clone()));
            }
        });
        let (segs, s) = seen.expect("macro not parsed");
        assert_eq!(segs.last().map(String::as_str), Some("span"));
        assert_eq!(s.as_deref(), Some("planner.slot_micros"));
    }

    #[test]
    fn macro_rules_bodies_are_skipped_not_parsed() {
        // The `$x` fragment syntax must not derail the item parser; the
        // following fn must still be found.
        let f = parse(
            "macro_rules! m { ($x:expr) => { $x.lock().unwrap() }; }\nfn after() { real.call(); }",
        );
        let names: Vec<_> = fns(&f).into_iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["after"]);
        assert!(method_calls(&f).contains(&"call".to_string()));
    }

    #[test]
    fn raw_strings_and_nested_comments_in_bodies() {
        let f = parse(
            "fn f() { let s = r#\"quoted \"lock()\" text\"#; /* outer /* inner */ */ s.len(); }",
        );
        let calls = method_calls(&f);
        assert_eq!(calls, vec!["len"]);
    }

    #[test]
    fn lifetimes_do_not_confuse_expression_parsing() {
        let f = parse("fn f<'a>(x: &'a str) -> &'a str { 'outer: loop { break 'outer; } x }");
        assert_eq!(fns(&f).len(), 1);
    }

    #[test]
    fn let_else_and_while_let() {
        let f = parse(
            "fn f(o: Option<u32>) { let Some(v) = o else { return; }; while let Some(x) = next() { use_it(x); } }",
        );
        let body = first_fn_body(&f);
        assert!(matches!(
            &body.stmts[0],
            Stmt::Let {
                else_block: Some(_),
                ..
            }
        ));
        let mut whiles = 0;
        body.walk_exprs(&mut |e| {
            if matches!(e, Expr::While { .. }) {
                whiles += 1;
            }
        });
        assert_eq!(whiles, 1);
    }

    #[test]
    fn shift_operators_do_not_break_generics() {
        let f = parse("fn f(v: Vec<Vec<u8>>) -> u64 { (1u64 << 3) >> 1 }");
        assert_eq!(fns(&f).len(), 1);
        let f = parse("fn g() { let m: BTreeMap<String, Vec<u32>> = BTreeMap::new(); m.len(); }");
        assert!(method_calls(&f).contains(&"len".to_string()));
    }

    #[test]
    fn blocking_annotations_attribute_and_comment() {
        let f = parse("#[imcf_lint::blocking]\nfn slow() {}\n");
        assert!(f.items[0].blocking);
        let f = parse("// imcf-lint: blocking\nfn slow() {}\nfn fast() {}\n");
        assert!(f.items[0].blocking);
        assert!(!f.items[1].blocking);
        // The marker inside a doc comment is ignored.
        let f = parse("/// imcf-lint: blocking\nfn documented() {}\n");
        assert!(!f.items[0].blocking);
    }

    #[test]
    fn malformed_input_degrades_without_hanging() {
        let f = parse("fn broken( { ] } )) ;;; fn ok() { fine(); }");
        // At minimum the parser terminates and finds at least one fn.
        assert!(!fns(&f).is_empty());
        let _ = parse("{{{{{{");
        let _ = parse("impl impl impl");
        let _ = parse("match { => , }");
    }

    #[test]
    fn nested_fn_items_inside_bodies() {
        let f = parse("fn outer() { fn inner() { x.lock(); } inner(); }");
        let names: Vec<_> = fns(&f).into_iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn ast_walk_reaches_exprs_in_if_else_chains() {
        let f = parse(
            "fn f(a: bool) { if a { x.lock(); } else if !a { y.lock(); } else { z.lock(); } }",
        );
        assert_eq!(method_calls(&f).len(), 3);
    }

    #[test]
    fn field_chains_render_as_places() {
        let f = parse("fn f(&self) { self.inner.state.update(); }");
        let mut place = None;
        first_fn_body(&f).walk_exprs(&mut |e| {
            if let Expr::MethodCall { recv, method, .. } = e {
                if method == "update" {
                    place = recv.place();
                }
            }
        });
        assert_eq!(place.as_deref(), Some("self.inner.state"));
    }

    // Keep the ast import live for the helper signatures above.
    #[allow(dead_code)]
    fn _touch(_: &ast::File) {}
}
