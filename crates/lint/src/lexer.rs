//! A hand-rolled Rust lexer, sufficient for token-tree-level lints.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are not
//! available (the same constraint that produced the `compat/` shims). This
//! lexer handles the parts of the grammar that matter for accurate
//! scanning — string/char/byte/raw-string literals, nested block comments,
//! lifetimes vs char literals, numeric literals with suffixes — and emits a
//! flat token stream with line numbers, plus the comment list (comments
//! carry `// SAFETY:` justifications and `// imcf-lint: allow(...)`
//! suppressions).

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `unsafe`, `Instant`, ...).
    Ident(String),
    /// A lifetime (`'a`, `'static`).
    Lifetime(String),
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int(String),
    /// A float literal (`0.0`, `1e-9`, `2f64`).
    Float(String),
    /// A string literal's content (cooked, raw, byte or C string).
    Str(String),
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// An operator or delimiter, multi-character forms pre-merged
    /// (`==`, `::`, `=>`, `{`, ...).
    Punct(&'static str),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment (line or block) with the line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    /// Lines the comment spans, inclusive (equal to `line` for `//`).
    pub end_line: u32,
    pub text: String,
    /// A doc comment (`///`, `//!`, `/** */`, `/*! */`). Doc comments are
    /// rendered documentation, not code annotations, so suppression and
    /// marker comments inside them are inert.
    pub is_doc: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so the match is maximal.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes a whole source file. The lexer never fails: malformed input
/// degrades to single-character punct tokens, which no lint matches.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text,
                    is_doc,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let start = cur.pos;
                cur.advance(2);
                let mut depth = 1u32;
                while depth > 0 {
                    if cur.starts_with("/*") {
                        depth += 1;
                        cur.advance(2);
                    } else if cur.starts_with("*/") {
                        depth -= 1;
                        cur.advance(2);
                    } else if cur.bump().is_none() {
                        break;
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                let is_doc = (text.starts_with("/**") && !text.starts_with("/**/"))
                    || text.starts_with("/*!");
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    text,
                    is_doc,
                });
            }
            b'"' => {
                let content = lex_cooked_string(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
            }
            b'r' | b'b' | b'c' if starts_raw_or_byte_literal(&cur) => {
                lex_prefixed_literal(&mut cur, &mut out, line);
            }
            b'\'' => {
                lex_quote(&mut cur, &mut out, line);
            }
            _ if b.is_ascii_digit() => {
                let tok = lex_number(&mut cur);
                out.tokens.push(Token { tok, line });
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    cur.bump();
                }
                let ident = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            _ => {
                let mut matched = false;
                for p in PUNCTS {
                    if cur.starts_with(p) {
                        cur.advance(p.len());
                        out.tokens.push(Token {
                            tok: Tok::Punct(p),
                            line,
                        });
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    cur.bump();
                    out.tokens.push(Token {
                        tok: Tok::Punct(single_punct(b)),
                        line,
                    });
                }
            }
        }
    }
    out
}

/// Interns a single-byte punct as a `&'static str`.
fn single_punct(b: u8) -> &'static str {
    const TABLE: &[(u8, &str)] = &[
        (b'{', "{"),
        (b'}', "}"),
        (b'(', "("),
        (b')', ")"),
        (b'[', "["),
        (b']', "]"),
        (b'<', "<"),
        (b'>', ">"),
        (b'=', "="),
        (b'!', "!"),
        (b'+', "+"),
        (b'-', "-"),
        (b'*', "*"),
        (b'/', "/"),
        (b'%', "%"),
        (b'&', "&"),
        (b'|', "|"),
        (b'^', "^"),
        (b'~', "~"),
        (b'#', "#"),
        (b'.', "."),
        (b',', ","),
        (b';', ";"),
        (b':', ":"),
        (b'?', "?"),
        (b'@', "@"),
        (b'$', "$"),
    ];
    for (byte, s) in TABLE {
        if *byte == b {
            return s;
        }
    }
    "?"
}

/// Consumes a `"..."` literal (opening quote under the cursor) and returns
/// its content with escapes left in place (backslash pairs skipped so an
/// escaped quote cannot end the literal early).
fn lex_cooked_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => break,
            _ => {
                cur.bump();
            }
        }
    }
    let content = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
    cur.bump(); // closing quote
    content
}

/// Is the cursor at `r"`, `r#`, `b"`, `b'`, `br`, `c"`, `cr` — i.e. a
/// prefixed literal rather than an identifier starting with r/b/c?
fn starts_raw_or_byte_literal(cur: &Cursor) -> bool {
    let b0 = match cur.peek() {
        Some(b) => b,
        None => return false,
    };
    let b1 = cur.peek_at(1);
    match (b0, b1) {
        (b'r' | b'c', Some(b'"' | b'#')) => b0 == b'r' || b1 == Some(b'"'),
        (b'b', Some(b'"' | b'\'')) => true,
        (b'b' | b'c', Some(b'r')) => matches!(cur.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

/// Lexes `r"..."`, `r#"..."#`, `b"..."`, `b'x'`, `br#"..."#`, `c"..."`.
fn lex_prefixed_literal(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    // Consume the prefix letters (r, b, c, br, cr).
    while matches!(cur.peek(), Some(b'r' | b'b' | b'c')) {
        if matches!(cur.peek(), Some(b'"' | b'\'' | b'#')) {
            break;
        }
        // Only consume letters that are actually part of the prefix.
        let is_prefix = matches!(
            (cur.peek(), cur.peek_at(1)),
            (Some(b'r' | b'b' | b'c'), Some(b'"' | b'#' | b'\''))
        ) || matches!(
            (cur.peek(), cur.peek_at(1), cur.peek_at(2)),
            (Some(b'b' | b'c'), Some(b'r'), Some(b'"' | b'#'))
        );
        if !is_prefix {
            break;
        }
        cur.bump();
    }
    match cur.peek() {
        Some(b'\'') => {
            // Byte char literal b'x'.
            cur.bump();
            while let Some(c) = cur.peek() {
                match c {
                    b'\\' => {
                        cur.bump();
                        cur.bump();
                    }
                    b'\'' => break,
                    _ => {
                        cur.bump();
                    }
                }
            }
            cur.bump();
            out.tokens.push(Token {
                tok: Tok::Char,
                line,
            });
        }
        Some(b'#') => {
            // Raw string with N hashes: r#"..."# etc. — unless this is a
            // raw identifier (`r#fn`), which has an ident after the hash.
            let mut hashes = 0usize;
            while cur.peek() == Some(b'#') {
                hashes += 1;
                cur.bump();
            }
            if cur.peek() != Some(b'"') {
                // Raw identifier: lex the ident and emit it.
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    cur.bump();
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()),
                    line,
                });
                return;
            }
            cur.bump(); // opening quote
            let start = cur.pos;
            let end;
            loop {
                match cur.peek() {
                    None => {
                        end = cur.pos;
                        break;
                    }
                    Some(b'"') => {
                        let mut closing = 0usize;
                        while closing < hashes && cur.peek_at(1 + closing) == Some(b'#') {
                            closing += 1;
                        }
                        if closing == hashes {
                            end = cur.pos;
                            cur.advance(1 + hashes);
                            break;
                        }
                        cur.bump();
                    }
                    _ => {
                        cur.bump();
                    }
                }
            }
            out.tokens.push(Token {
                tok: Tok::Str(String::from_utf8_lossy(&cur.src[start..end]).into_owned()),
                line,
            });
        }
        Some(b'"') => {
            let content = lex_cooked_string(cur);
            out.tokens.push(Token {
                tok: Tok::Str(content),
                line,
            });
        }
        _ => {
            // Malformed; emit nothing and let the main loop continue.
        }
    }
}

/// Disambiguates a `'` between a lifetime and a char literal.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    // A lifetime is 'ident NOT followed by a closing quote ('a, 'static);
    // a char literal is 'x' or an escape '\n'.
    let next = cur.peek_at(1);
    let after = cur.peek_at(2);
    let is_lifetime = match next {
        Some(n) if is_ident_start(n) => after != Some(b'\''),
        _ => false,
    };
    if is_lifetime {
        cur.bump(); // quote
        let start = cur.pos;
        while let Some(c) = cur.peek() {
            if !is_ident_continue(c) {
                break;
            }
            cur.bump();
        }
        out.tokens.push(Token {
            tok: Tok::Lifetime(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()),
            line,
        });
    } else {
        cur.bump(); // quote
        while let Some(c) = cur.peek() {
            match c {
                b'\\' => {
                    cur.bump();
                    cur.bump();
                }
                b'\'' => break,
                _ => {
                    cur.bump();
                }
            }
        }
        cur.bump(); // closing quote
        out.tokens.push(Token {
            tok: Tok::Char,
            line,
        });
    }
}

/// Lexes a numeric literal, deciding Int vs Float.
fn lex_number(cur: &mut Cursor) -> Tok {
    let start = cur.pos;
    let mut is_float = false;

    if cur.starts_with("0x")
        || cur.starts_with("0X")
        || cur.starts_with("0b")
        || cur.starts_with("0o")
    {
        cur.advance(2);
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
        return Tok::Int(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned());
    }

    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == b'_' {
            cur.bump();
        } else {
            break;
        }
    }
    // A `.` is part of the number only when NOT followed by an identifier
    // start (method call `1.max(2)`) or another `.` (range `0..10`).
    if cur.peek() == Some(b'.') {
        match cur.peek_at(1) {
            Some(c) if c.is_ascii_digit() => {
                is_float = true;
                cur.bump();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() || c == b'_' {
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
            Some(c) if is_ident_start(c) || c == b'.' => {}
            _ => {
                // Trailing dot float: `1.`
                is_float = true;
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e' | b'E')) {
        let sign_skip = matches!(cur.peek_at(1), Some(b'+' | b'-'));
        let digit_pos = if sign_skip { 2 } else { 1 };
        if matches!(cur.peek_at(digit_pos), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            cur.advance(digit_pos + 1);
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == b'_' {
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Suffix (u32, f64, ...).
    let suffix_start = cur.pos;
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            cur.bump();
        } else {
            break;
        }
    }
    let suffix = &cur.src[suffix_start..cur.pos];
    if suffix == b"f32" || suffix == b"f64" {
        is_float = true;
    }
    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
    if is_float {
        Tok::Float(text)
    } else {
        Tok::Int(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("let x = 1;\nlet y = x.unwrap();\n");
        assert_eq!(idents(&l), vec!["let", "x", "let", "y", "x", "unwrap"]);
        let unwrap = l
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".into()))
            .unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn cooked_strings_with_escapes() {
        let l = lex(r#"let s = "a.b\"c"; x.unwrap();"#);
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.starts_with("a.b"))));
        // The escaped quote must not end the string early: unwrap survives.
        assert!(idents(&l).contains(&"unwrap"));
    }

    #[test]
    fn raw_strings_do_not_hide_following_tokens() {
        let l = lex(r###"let s = r#"no "escape" herein"#; y.unwrap();"###);
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("no \"escape\" herein"))));
        assert!(idents(&l).contains(&"unwrap"));
    }

    #[test]
    fn raw_string_contents_are_not_tokens() {
        // `.unwrap()` inside a string literal must not produce tokens.
        let l = lex(r#"let s = "x.unwrap()";"#);
        assert!(!idents(&l).contains(&"unwrap"));
        let l = lex(r##"let s = r"y.unwrap()";"##);
        assert!(!idents(&l).contains(&"unwrap"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex(r#"let a = b"bytes"; let c = b'\n'; z.unwrap();"#);
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s == "bytes")));
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Char));
        assert!(idents(&l).contains(&"unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner .unwrap() */ still outer */ x.expect(\"m\");");
        // The unwrap in the nested comment is invisible; expect survives.
        assert!(!idents(&l).contains(&"unwrap"));
        assert!(idents(&l).contains(&"expect"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comments_are_recorded_with_lines() {
        let l = lex("// SAFETY: fine\nunsafe { }\n");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("SAFETY:"));
        assert!(idents(&l).contains(&"unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Lifetime(n) if n == "a"))
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(!l.tokens.iter().any(|t| t.tok == Tok::Char));
    }

    #[test]
    fn char_literals_including_quote_escape() {
        let l = lex(r"let c = 'x'; let q = '\''; let n = '\n';");
        let chars = l.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn numbers_int_vs_float() {
        let l = lex("let a = 1; let b = 2.5; let c = 1e-9; let d = 3f64; let e = 0xFF;");
        let floats: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Float(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec!["2.5", "1e-9", "3f64"]);
        let ints: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Int(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec!["1", "0xFF"]);
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let l = lex("let m = 1.max(2); let r = 0..10;");
        assert!(!l.tokens.iter().any(|t| matches!(t.tok, Tok::Float(_))));
        assert!(idents(&l).contains(&"max"));
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Punct("..")));
    }

    #[test]
    fn doc_comments_are_classified() {
        let l =
            lex("/// doc\n//! inner\n// plain\n/** block doc */\n/* plain block */ fn f() {}\n");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.is_doc).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn multichar_puncts_merge() {
        let l = lex("a == b != c => d :: e <= f");
        let puncts: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "=>", "::", "<="]);
    }
}
