//! Workspace symbol table and intra-workspace call graph.
//!
//! Built over the parsed ASTs of every collected source file, this module
//! indexes each function item (free functions and impl/trait methods) and
//! resolves `Call`/`MethodCall` expressions to workspace function ids by
//! name. Resolution is *syntactic* — there is no type inference — so the
//! rules are deliberately conservative:
//!
//! - Path calls (`foo()`, `http::read_request()`, `Type::assoc()`,
//!   `Self::helper()`) resolve via the path hint: `Self` maps to the
//!   caller's impl owner, an uppercase hint matches the impl type name, a
//!   lowercase hint prefers functions in a same-crate file named after the
//!   module, and bare names prefer same-file, then same-crate free
//!   functions.
//! - Method calls (`recv.publish(...)`) resolve only when the method name
//!   is unambiguous: exactly one same-crate method of that name, else
//!   exactly one workspace-wide. Anything ambiguous is unresolved.
//! - Calls through `dyn Trait` objects, function-pointer/closure values
//!   and macro bodies are invisible — the documented false negatives of
//!   the analysis (`DESIGN.md` §14).
//!
//! Everything is ordered by function id (file order × source position), so
//! downstream passes iterate deterministically.

use crate::ast::{Block, Expr, File, ItemKind};
use crate::lexer::Comment;
use std::collections::BTreeMap;

/// One parsed source file with its workspace context.
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// The owning crate's directory name (`net` for `crates/net/...`,
    /// `root` for the workspace-root `src/`).
    pub crate_name: String,
    pub ast: File,
    pub comments: Vec<Comment>,
}

/// Derives the crate name from a workspace-relative path.
pub fn crate_of(rel_path: &str) -> String {
    match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or("root").to_string(),
        None => String::from("root"),
    }
}

/// One function in the symbol table.
pub struct FnNode<'a> {
    /// Index into the `ParsedFile` slice.
    pub file: usize,
    pub name: String,
    /// Enclosing impl/trait type name; empty for free functions.
    pub owner: String,
    pub line: u32,
    pub in_test: bool,
    /// Carries the `#[imcf_lint::blocking]` attribute or the
    /// `// imcf-lint: blocking` marker comment.
    pub annotated_blocking: bool,
    /// `None` for bodyless trait-method declarations.
    pub body: Option<&'a Block>,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    pub files: &'a [ParsedFile],
    pub fns: Vec<FnNode<'a>>,
    /// Resolved call edges per function: `(callee_id, call line)`, in
    /// source order.
    pub edges: Vec<Vec<(usize, u32)>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Indexes every function item and resolves all call edges.
    pub fn build(files: &'a [ParsedFile]) -> CallGraph<'a> {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (file_idx, pf) in files.iter().enumerate() {
            for item in &pf.ast.items {
                item.walk("", false, &mut |ctx| {
                    let body = match &ctx.item.kind {
                        ItemKind::Fn(b) => Some(b),
                        ItemKind::FnDecl => None,
                        _ => return,
                    };
                    if ctx.item.name.is_empty() {
                        return;
                    }
                    let id = fns.len();
                    by_name.entry(ctx.item.name.clone()).or_default().push(id);
                    fns.push(FnNode {
                        file: file_idx,
                        name: ctx.item.name.clone(),
                        owner: ctx.owner.clone(),
                        line: ctx.item.line,
                        in_test: ctx.in_test,
                        annotated_blocking: ctx.item.blocking,
                        body,
                    });
                });
            }
        }
        let mut graph = CallGraph {
            files,
            fns,
            edges: Vec::new(),
            by_name,
        };
        let edges: Vec<Vec<(usize, u32)>> = (0..graph.fns.len())
            .map(|id| {
                let mut edges = Vec::new();
                if let Some(body) = graph.fns[id].body {
                    body.walk_exprs(&mut |e| {
                        if let Some(callee) = graph.resolve(id, e) {
                            edges.push((callee, e.line()));
                        }
                    });
                }
                edges
            })
            .collect();
        graph.edges = edges;
        graph
    }

    /// The human label for a function: `crate::Owner::name` / `crate::name`.
    pub fn label(&self, id: usize) -> String {
        let f = &self.fns[id];
        let krate = &self.files[f.file].crate_name;
        if f.owner.is_empty() {
            format!("{krate}::{}", f.name)
        } else {
            format!("{krate}::{}::{}", f.owner, f.name)
        }
    }

    /// Resolves a call expression made from `from` to a workspace function
    /// id, or `None` for external/ambiguous/invisible targets.
    pub fn resolve(&self, from: usize, expr: &Expr) -> Option<usize> {
        match expr {
            Expr::Call { callee, .. } => match callee.as_ref() {
                Expr::Path { segs, .. } => self.resolve_path(from, segs),
                _ => None,
            },
            Expr::MethodCall { method, .. } => self.resolve_method(from, method),
            _ => None,
        }
    }

    fn resolve_path(&self, from: usize, segs: &[String]) -> Option<usize> {
        let name = segs.last()?;
        let candidates = self.by_name.get(name)?;
        let caller = &self.fns[from];
        let caller_crate = &self.files[caller.file].crate_name;
        let hint = segs.len().checked_sub(2).map(|i| segs[i].as_str());
        // Crate qualification (`imcf_net::...`, `crate::...`).
        let target_crate: Option<String> = match segs.first().map(String::as_str) {
            Some("crate") | Some("self") | Some("super") => Some(caller_crate.clone()),
            Some(first) => first.strip_prefix("imcf_").map(str::to_string),
            None => None,
        };
        let viable = |id: &usize| -> bool {
            let cand = &self.fns[*id];
            if cand.in_test && !caller.in_test {
                return false;
            }
            if let Some(tc) = &target_crate {
                if &self.files[cand.file].crate_name != tc {
                    return false;
                }
            }
            true
        };
        match hint {
            Some("Self") => candidates
                .iter()
                .filter(|id| viable(id))
                .find(|id| {
                    self.fns[**id].owner == caller.owner
                        && self.files[self.fns[**id].file].crate_name == *caller_crate
                })
                .copied(),
            Some(h) if h.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                // `Type::assoc()`: match the impl owner, same crate first.
                let owned: Vec<usize> = candidates
                    .iter()
                    .filter(|id| viable(id))
                    .filter(|id| self.fns[**id].owner == h)
                    .copied()
                    .collect();
                owned
                    .iter()
                    .find(|id| self.files[self.fns[**id].file].crate_name == *caller_crate)
                    .or(owned.first())
                    .copied()
            }
            Some(h) if h == "crate" || h == "self" || h == "super" || h.starts_with("imcf_") => {
                // Crate-qualified bare call (`imcf_a::emit()`): unique free
                // fn in the target crate (the `viable` filter applied it).
                candidates
                    .iter()
                    .filter(|id| viable(id))
                    .find(|id| self.fns[**id].owner.is_empty())
                    .copied()
            }
            Some(h) => {
                // `module::fn()`: same-crate free fn whose file matches the
                // module name.
                let module_file = |id: &usize| {
                    let rel = &self.files[self.fns[*id].file].rel_path;
                    rel.ends_with(&format!("/{h}.rs")) || rel.ends_with(&format!("/{h}/mod.rs"))
                };
                candidates
                    .iter()
                    .filter(|id| viable(id))
                    .filter(|id| self.fns[**id].owner.is_empty())
                    .find(|id| {
                        self.files[self.fns[**id].file].crate_name == *caller_crate
                            && module_file(id)
                    })
                    .copied()
            }
            None => {
                // Bare name: same file first, then unique-in-crate free fn.
                let free: Vec<usize> = candidates
                    .iter()
                    .filter(|id| viable(id))
                    .filter(|id| self.fns[**id].owner.is_empty())
                    .copied()
                    .collect();
                free.iter()
                    .find(|id| self.fns[**id].file == caller.file)
                    .or_else(|| {
                        let same_crate: Vec<&usize> = free
                            .iter()
                            .filter(|id| {
                                self.files[self.fns[**id].file].crate_name == *caller_crate
                            })
                            .collect();
                        if same_crate.len() == 1 {
                            Some(same_crate[0])
                        } else if same_crate.is_empty() && free.len() == 1 {
                            // A `use other_crate::module::f` import makes the
                            // call site a bare name; chase it when the name is
                            // globally unique among free fns.
                            Some(&free[0])
                        } else {
                            None
                        }
                    })
                    .copied()
            }
        }
    }

    fn resolve_method(&self, from: usize, method: &str) -> Option<usize> {
        let candidates = self.by_name.get(method)?;
        let caller = &self.fns[from];
        let caller_crate = &self.files[caller.file].crate_name;
        let methods: Vec<usize> = candidates
            .iter()
            .filter(|id| !self.fns[**id].owner.is_empty())
            .filter(|id| !self.fns[**id].in_test || caller.in_test)
            .copied()
            .collect();
        let same_crate: Vec<usize> = methods
            .iter()
            .filter(|id| self.files[self.fns[**id].file].crate_name == *caller_crate)
            .copied()
            .collect();
        // Without receiver types, only an unambiguous name is safe.
        match same_crate.as_slice() {
            [only] => Some(*only),
            [] => match methods.as_slice() {
                [only] => Some(*only),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    pub(crate) fn parse_files(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                ParsedFile {
                    rel_path: rel.to_string(),
                    crate_name: crate_of(rel),
                    ast: parse_file(&lexed),
                    comments: lexed.comments,
                }
            })
            .collect()
    }

    fn edge_labels(graph: &CallGraph, from_label: &str) -> Vec<String> {
        let from = (0..graph.fns.len())
            .find(|id| graph.label(*id) == from_label)
            .expect("caller not found");
        graph.edges[from]
            .iter()
            .map(|(to, _)| graph.label(*to))
            .collect()
    }

    #[test]
    fn resolves_same_file_and_module_calls() {
        let files = parse_files(&[
            (
                "crates/a/src/lib.rs",
                "fn top() { helper(); util::shared(); }\nfn helper() {}\n",
            ),
            ("crates/a/src/util.rs", "pub fn shared() {}\n"),
        ]);
        let graph = CallGraph::build(&files);
        assert_eq!(
            edge_labels(&graph, "a::top"),
            vec!["a::helper", "a::shared"]
        );
    }

    #[test]
    fn resolves_assoc_and_self_calls() {
        let files = parse_files(&[(
            "crates/a/src/lib.rs",
            "struct Bus;\nimpl Bus {\n  fn publish(&self) { Self::notify(); }\n  fn notify() {}\n}\nfn go(b: &Bus) { b.publish(); Bus::notify(); }\n",
        )]);
        let graph = CallGraph::build(&files);
        assert_eq!(
            edge_labels(&graph, "a::Bus::publish"),
            vec!["a::Bus::notify"]
        );
        assert_eq!(
            edge_labels(&graph, "a::go"),
            vec!["a::Bus::publish", "a::Bus::notify"]
        );
    }

    #[test]
    fn ambiguous_methods_stay_unresolved() {
        let files = parse_files(&[(
            "crates/a/src/lib.rs",
            "struct X; struct Y;\nimpl X { fn run(&self) {} }\nimpl Y { fn run(&self) {} }\nfn go(x: &X) { x.run(); }\n",
        )]);
        let graph = CallGraph::build(&files);
        assert!(edge_labels(&graph, "a::go").is_empty());
    }

    #[test]
    fn cross_crate_resolution_follows_qualified_and_unique_imported_names() {
        let files = parse_files(&[
            ("crates/a/src/lib.rs", "pub fn emit() {}\n"),
            (
                "crates/b/src/lib.rs",
                "fn go() { imcf_a::emit(); emit(); }\n",
            ),
        ]);
        let graph = CallGraph::build(&files);
        // The qualified call resolves, and so does the bare name: `use`
        // imports are not modeled, so a globally unique free fn is chased
        // across crates.
        assert_eq!(edge_labels(&graph, "b::go"), vec!["a::emit", "a::emit"]);
    }

    #[test]
    fn bare_names_ambiguous_across_crates_stay_unresolved() {
        let files = parse_files(&[
            ("crates/a/src/lib.rs", "pub fn emit() {}\n"),
            ("crates/c/src/lib.rs", "pub fn emit() {}\n"),
            ("crates/b/src/lib.rs", "fn go() { emit(); }\n"),
        ]);
        let graph = CallGraph::build(&files);
        assert!(edge_labels(&graph, "b::go").is_empty());
    }

    #[test]
    fn test_fns_are_not_targets_of_library_calls() {
        let files = parse_files(&[(
            "crates/a/src/lib.rs",
            "fn go() { check(); }\n#[cfg(test)]\nmod tests { pub fn check() {} }\n",
        )]);
        let graph = CallGraph::build(&files);
        assert!(edge_labels(&graph, "a::go").is_empty());
    }
}
