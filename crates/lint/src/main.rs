//! The `imcf-lint` command-line driver.
//!
//! ```text
//! cargo run -p imcf-lint -- --check             # CI gate: fail above baseline
//! cargo run -p imcf-lint -- --json              # machine-readable findings
//! cargo run -p imcf-lint -- --update-baseline   # rewrite lint-baseline.toml
//! ```
//!
//! With no flags the tool prints findings and the per-rule summary without
//! failing, which is the ergonomic form while burning a baseline down.

use imcf_lint::baseline::Baseline;
use imcf_lint::{lint_workspace, workspace};
use std::process::ExitCode;

struct Options {
    check: bool,
    json: bool,
    update_baseline: bool,
}

fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        json: false,
        update_baseline: false,
    };
    for arg in argv {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: imcf-lint [--check] [--json] [--update-baseline]\n\
                     \n\
                     --check            exit 1 when any rule exceeds lint-baseline.toml\n\
                     --json             print findings and counts as JSON\n\
                     --update-baseline  rewrite lint-baseline.toml with current counts",
                ));
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&argv)?;

    // `cargo run -p imcf-lint` keeps the invoker's cwd, which in CI and in
    // normal use is somewhere inside the workspace; walk up from there.
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = workspace::find_root(&cwd)?;
    let report = lint_workspace(&root)?;
    let baseline = Baseline::load(&root)?;

    if opts.update_baseline {
        let updated = Baseline {
            counts: report.counts(),
        };
        updated.store(&root)?;
        println!(
            "lint-baseline.toml updated: {}",
            updated
                .counts
                .iter()
                .map(|(r, n)| format!("{} = {n}", r.code()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        return Ok(true);
    }

    if opts.json {
        print!("{}", report.render_json(&baseline));
    } else {
        print!("{}", report.render_text(&baseline));
    }

    let over = report.over_baseline(&baseline);
    if opts.check && !over.is_empty() {
        for (rule, actual, allowed) in &over {
            eprintln!(
                "imcf-lint: IMCF-{} has {actual} finding(s), baseline allows {allowed}",
                rule.code()
            );
        }
        eprintln!(
            "imcf-lint: fix the findings above or (for a deliberate exception) add an\n\
             `// imcf-lint: allow(L00x)` comment with a justification; the baseline\n\
             only ratchets down."
        );
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
