//! The `imcf-lint` command-line driver.
//!
//! ```text
//! cargo run -p imcf-lint -- --check              # CI gate: fail above baseline
//! cargo run -p imcf-lint -- --format json        # machine-readable findings
//! cargo run -p imcf-lint -- --jobs 4             # parallel lex/parse/lint
//! cargo run -p imcf-lint -- --write-baseline     # ratchet lint-baseline.toml DOWN
//! ```
//!
//! With no flags the tool prints findings and the per-rule summary without
//! failing, which is the ergonomic form while burning a baseline down.
//! `--write-baseline` only ever lowers counts: if any rule currently has
//! more findings than the checked-in baseline allows, it refuses — fix the
//! findings or add a justified `// imcf-lint: allow(L00x)` instead.

use imcf_lint::baseline::Baseline;
use imcf_lint::{lint_workspace_jobs, workspace};
use std::process::ExitCode;

struct Options {
    check: bool,
    json: bool,
    write_baseline: bool,
    jobs: Option<usize>,
}

fn parse_args(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        json: false,
        write_baseline: false,
        jobs: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check" => opts.check = true,
            // Back-compat alias for `--format json`.
            "--json" => opts.json = true,
            "--format" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("json") => opts.json = true,
                    Some("text") => opts.json = false,
                    other => {
                        return Err(format!(
                            "--format expects `text` or `json`, got {:?}",
                            other.unwrap_or("<missing>")
                        ))
                    }
                }
            }
            "--jobs" => {
                i += 1;
                let n = argv
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                    .ok_or_else(|| String::from("--jobs expects a positive integer"))?;
                opts.jobs = Some(n);
            }
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: imcf-lint [--check] [--format text|json] [--jobs N] [--write-baseline]\n\
                     \n\
                     --check            exit 1 when any rule exceeds lint-baseline.toml\n\
                     --format json      print findings and counts as JSON (alias: --json)\n\
                     --jobs N           lex/parse/lint files across N threads\n\
                     --write-baseline   ratchet lint-baseline.toml down to current counts;\n\
                     \u{20}                  refuses to raise any count",
                ));
            }
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    let n = v
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| String::from("--jobs expects a positive integer"))?;
                    opts.jobs = Some(n);
                } else {
                    return Err(format!("unknown flag `{other}` (try --help)"));
                }
            }
        }
        i += 1;
    }
    Ok(opts)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&argv)?;
    let jobs = imcf_pool::resolve_jobs(opts.jobs);

    // `cargo run -p imcf-lint` keeps the invoker's cwd, which in CI and in
    // normal use is somewhere inside the workspace; walk up from there.
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = workspace::find_root(&cwd)?;
    let report = lint_workspace_jobs(&root, jobs)?;
    let baseline = Baseline::load(&root)?;

    if opts.write_baseline {
        let counts = report.counts();
        // The baseline is a ratchet: this flag records progress, it does
        // not grant amnesty. Any regression has to be fixed or explicitly
        // suppressed at the finding site.
        let raised: Vec<String> = counts
            .iter()
            .filter(|(rule, n)| **n > baseline.allowed(**rule))
            .map(|(rule, n)| format!("{} {} -> {n}", rule.code(), baseline.allowed(*rule)))
            .collect();
        if !raised.is_empty() {
            return Err(format!(
                "--write-baseline refuses to raise counts ({}); fix the findings or add a\n\
                 justified `// imcf-lint: allow(L00x)` at the site",
                raised.join(", ")
            ));
        }
        let updated = Baseline { counts };
        updated.store(&root)?;
        println!(
            "lint-baseline.toml updated: {}",
            updated
                .counts
                .iter()
                .map(|(r, n)| format!("{} = {n}", r.code()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        return Ok(true);
    }

    if opts.json {
        print!("{}", report.render_json(&baseline));
    } else {
        print!("{}", report.render_text(&baseline));
    }

    let over = report.over_baseline(&baseline);
    if opts.check && !over.is_empty() {
        for (rule, actual, allowed) in &over {
            eprintln!(
                "imcf-lint: IMCF-{} has {actual} finding(s), baseline allows {allowed}",
                rule.code()
            );
        }
        eprintln!(
            "imcf-lint: fix the findings above or (for a deliberate exception) add an\n\
             `// imcf-lint: allow(L00x)` comment with a justification; the baseline\n\
             only ratchets down."
        );
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
