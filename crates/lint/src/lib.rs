//! `imcf-lint`: IMCF's in-tree static analysis.
//!
//! A firewall only earns trust when its enforcement logic is itself
//! verifiable. This crate scans the workspace's library sources with a
//! hand-rolled Rust lexer and recursive-descent parser (no external
//! dependencies — the registry is offline) and enforces nine
//! IMCF-specific rules, ratcheted against the checked-in
//! `lint-baseline.toml`. L001–L005 run over the token stream; L006–L009
//! run over a lightweight AST, a workspace symbol table, and an
//! intra-workspace call graph. See `DESIGN.md` §9/§14 and [`rules`] for
//! the rule definitions.
//!
//! Files are lexed, parsed, and token-linted in parallel via `imcf-pool`;
//! the call-graph passes then run once over the combined symbol table.
//! Findings are sorted by (file, line, rule, message) at the end, so the
//! report is byte-identical regardless of `--jobs`.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod rules;
pub mod taint;
pub mod workspace;

use baseline::Baseline;
use callgraph::{CallGraph, ParsedFile};
use rules::{Finding, Rule, ALL_RULES};
use std::collections::BTreeMap;
use std::path::Path;

/// The outcome of linting a workspace.
#[derive(Debug)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files: usize,
    /// Wall time of the full pass, µs.
    pub pass_micros: u64,
}

impl Report {
    /// Findings per rule.
    pub fn counts(&self) -> BTreeMap<Rule, usize> {
        let mut counts: BTreeMap<Rule, usize> = ALL_RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Rules whose finding count exceeds the baseline, with (actual,
    /// allowed) pairs.
    pub fn over_baseline(&self, baseline: &Baseline) -> Vec<(Rule, usize, usize)> {
        self.counts()
            .into_iter()
            .filter(|(rule, n)| *n > baseline.allowed(*rule))
            .map(|(rule, n)| (rule, n, baseline.allowed(rule)))
            .collect()
    }

    /// Renders findings and a per-rule summary as human-readable text.
    pub fn render_text(&self, baseline: &Baseline) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: IMCF-{} {} — {}\n",
                f.file,
                f.line,
                f.rule.code(),
                f.message,
                f.rule.describe()
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        for (rule, n) in self.counts() {
            let allowed = baseline.allowed(rule);
            let status = if n > allowed { "OVER" } else { "ok" };
            out.push_str(&format!(
                "IMCF-{}: {n} finding(s), baseline {allowed} [{status}]\n",
                rule.code()
            ));
        }
        out
    }

    /// Renders the report as machine-readable JSON.
    pub fn render_json(&self, baseline: &Baseline) -> String {
        let mut out = String::from("{\n  \"files\": ");
        out.push_str(&format!("{},\n  \"findings\": [\n", self.files));
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"IMCF-{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                f.rule.code(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"counts\": {");
        let counts = self.counts();
        let body: Vec<String> = counts
            .iter()
            .map(|(rule, n)| {
                format!(
                    "\"{}\": {{\"actual\": {n}, \"baseline\": {}}}",
                    rule.code(),
                    baseline.allowed(*rule)
                )
            })
            .collect();
        out.push_str(&body.join(", "));
        out.push_str("}\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Lints every collected source file under `root` on one thread.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_jobs(root, 1)
}

/// Lints every collected source file under `root`, lexing/parsing/
/// token-linting files across `jobs` worker threads. The report is
/// byte-identical for any `jobs` value: per-file results come back in
/// input order and the merged findings are sorted before return.
pub fn lint_workspace_jobs(root: &Path, jobs: usize) -> Result<Report, String> {
    let sw = imcf_telemetry::Stopwatch::start();
    let files = workspace::collect_sources(root)?;
    let file_count = files.len();

    // Stage 1 (parallel, per file): read + lex + token rules + parse +
    // the intra-file wire-arithmetic pass.
    type PerFile = Result<(Vec<Finding>, ParsedFile), String>;
    let per_file: Vec<PerFile> = imcf_pool::map_indexed(jobs, files, |_i, path| {
        let rel = workspace::relative(root, &path);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let lexed = lexer::lex(&source);
        let mut findings = Vec::new();
        rules::lint_tokens(&rel, &lexed, &mut findings);
        let ast = parser::parse_file(&lexed);
        findings.extend(taint::lint_wire_arithmetic(&rel, &ast));
        let crate_name = callgraph::crate_of(&rel);
        Ok((
            findings,
            ParsedFile {
                rel_path: rel,
                crate_name,
                ast,
                comments: lexed.comments,
            },
        ))
    });

    let mut findings = Vec::new();
    let mut parsed = Vec::with_capacity(file_count);
    for result in per_file {
        let (file_findings, file) = result?;
        findings.extend(file_findings);
        parsed.push(file);
    }

    // Stage 2 (single-threaded): the call-graph passes over the whole
    // workspace symbol table.
    let graph = CallGraph::build(&parsed);
    findings.extend(locks::lint_locks(&graph));
    findings.extend(taint::lint_determinism(&graph));

    // Suppression comments apply uniformly — including to findings from
    // the global passes, which are produced without file context. The
    // token rules already filtered inline; re-checking them is harmless.
    let comments: BTreeMap<&str, &[lexer::Comment]> = parsed
        .iter()
        .map(|p| (p.rel_path.as_str(), p.comments.as_slice()))
        .collect();
    findings.retain(|f| {
        comments
            .get(f.file.as_str())
            .is_none_or(|c| !rules::suppressed(c, f.rule, f.line))
    });

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });

    let pass_micros = sw.elapsed_micros();
    let telemetry = imcf_telemetry::global();
    telemetry.gauge("lint.files").set(file_count as f64);
    telemetry
        .histogram("lint.pass_micros")
        .observe(pass_micros as f64);

    Ok(Report {
        findings,
        files: file_count,
        pass_micros,
    })
}
