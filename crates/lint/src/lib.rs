//! `imcf-lint`: IMCF's in-tree static analysis.
//!
//! A firewall only earns trust when its enforcement logic is itself
//! verifiable. This crate scans the workspace's library sources with a
//! hand-rolled Rust lexer (no external dependencies — the registry is
//! offline) and enforces five IMCF-specific rules, ratcheted against the
//! checked-in `lint-baseline.toml`. See `DESIGN.md` §9 for the rules and
//! workflow, and [`rules`] for the rule definitions.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod workspace;

use baseline::Baseline;
use rules::{Finding, Rule, ALL_RULES};
use std::collections::BTreeMap;
use std::path::Path;

/// The outcome of linting a workspace.
#[derive(Debug)]
pub struct Report {
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings per rule.
    pub fn counts(&self) -> BTreeMap<Rule, usize> {
        let mut counts: BTreeMap<Rule, usize> = ALL_RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Rules whose finding count exceeds the baseline, with (actual,
    /// allowed) pairs.
    pub fn over_baseline(&self, baseline: &Baseline) -> Vec<(Rule, usize, usize)> {
        self.counts()
            .into_iter()
            .filter(|(rule, n)| *n > baseline.allowed(*rule))
            .map(|(rule, n)| (rule, n, baseline.allowed(rule)))
            .collect()
    }

    /// Renders findings and a per-rule summary as human-readable text.
    pub fn render_text(&self, baseline: &Baseline) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: IMCF-{} {} — {}\n",
                f.file,
                f.line,
                f.rule.code(),
                f.message,
                f.rule.describe()
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        for (rule, n) in self.counts() {
            let allowed = baseline.allowed(rule);
            let status = if n > allowed { "OVER" } else { "ok" };
            out.push_str(&format!(
                "IMCF-{}: {n} finding(s), baseline {allowed} [{status}]\n",
                rule.code()
            ));
        }
        out
    }

    /// Renders the report as machine-readable JSON.
    pub fn render_json(&self, baseline: &Baseline) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"IMCF-{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                f.rule.code(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"counts\": {");
        let counts = self.counts();
        let body: Vec<String> = counts
            .iter()
            .map(|(rule, n)| {
                format!(
                    "\"{}\": {{\"actual\": {n}, \"baseline\": {}}}",
                    rule.code(),
                    baseline.allowed(*rule)
                )
            })
            .collect();
        out.push_str(&body.join(", "));
        out.push_str("}\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Lints every collected source file under `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let files = workspace::collect_sources(root)?;
    let mut findings = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        rules::lint_source(&workspace::relative(root, &path), &source, &mut findings);
    }
    Ok(Report { findings })
}
