//! Lock-order and hold-and-call analysis (IMCF-L006, IMCF-L007).
//!
//! ## Guard tracking
//!
//! Each function body is walked by a small abstract interpreter that
//! tracks live lock guards through the scope structure:
//!
//! - acquisition: `m.lock()` / `m.read()` / `m.write()` with zero
//!   arguments, or the workspace's poison-recovering free helper
//!   `lock(&m)`; `unwrap`/`expect`/`unwrap_or_else` pass the guard
//!   through.
//! - binding: `let g = <acquisition>` keeps the guard live to the end of
//!   its block; `let _ = ...` and unbound statement temporaries release
//!   at statement end; `drop(g)` releases early; re-assignment rebinds.
//! - identity: a lock is named by crate plus the last component of the
//!   place it was acquired from (`net::queue` for `shared.queue.lock()`),
//!   with one level of local-alias chasing and recognition of
//!   `let m = Mutex::new(..)` locals and SCREAMING_CASE statics.
//!   Acquisitions whose receiver cannot be identified (e.g. a generic
//!   function parameter) are ignored — precision over noise.
//!
//! ## Rules
//!
//! **L006** builds the global lock-acquisition order graph: an edge
//! `a → b` exists when `b` is acquired (directly or via a callee's
//! transitive lock set) while `a` is held. Cycles (two functions taking
//! the same pair of locks in opposite orders) and re-entrant
//! re-acquisitions of a held lock are findings.
//!
//! **L007** flags blocking work while any guard is live: direct blocking
//! operations (bus/event publishing, socket and file I/O waits,
//! `thread::sleep`), calls resolving to a function annotated
//! `// imcf-lint: blocking` (or `#[imcf_lint::blocking]`), and calls
//! whose transitive callees block. `Condvar::wait*` is exempt — it
//! atomically releases the mutex it waits on (the PR 3 lost-wakeup fix
//! depends on exactly that pattern).
//!
//! Both rules are interprocedural over [`crate::callgraph`]; calls
//! through closures, `dyn Trait` and macro bodies are invisible
//! (`DESIGN.md` §14 discloses the false negatives).

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::CallGraph;
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that acquire a guard when called with zero arguments.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Methods that return their receiver's guard unchanged.
const GUARD_PASSTHROUGH: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Method names that block the calling thread (fail-closed list, kept
/// tight: `join`/`send` are excluded as too overloaded — documented false
/// negatives).
const BLOCKING_METHODS: [&str; 9] = [
    "accept",
    "flush",
    "publish",
    "read_exact",
    "read_line",
    "read_to_end",
    "recv",
    "recv_timeout",
    "write_all",
];

/// `a::b` path suffixes that block.
const BLOCKING_PATHS: [(&str, &str); 2] = [("thread", "sleep"), ("TcpStream", "connect")];

/// `Condvar` waiting releases the guard it is handed — never a violation.
const CONDVAR_WAITS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

/// Per-function facts from the intra-procedural walk.
#[derive(Default)]
struct FnFacts {
    /// Lock ids this function acquires directly.
    acquired: BTreeSet<String>,
    /// The function directly performs a blocking operation.
    blocking_direct: bool,
    /// Every call expression: resolved callee, display name, line, and
    /// the lock ids held at the call site.
    calls: Vec<CallSite>,
    /// Every identified acquisition: lock id, line, ids held beforehand.
    acquisitions: Vec<(String, u32, BTreeSet<String>)>,
}

struct CallSite {
    callee: Option<usize>,
    name: String,
    line: u32,
    held: BTreeSet<String>,
    /// The call itself is a blocking operation by name.
    blocking_by_name: bool,
}

/// Runs L006 + L007 over the whole workspace.
pub fn lint_locks(graph: &CallGraph) -> Vec<Finding> {
    let facts: Vec<FnFacts> = (0..graph.fns.len())
        .map(|id| {
            if graph.fns[id].in_test {
                return FnFacts::default();
            }
            match graph.fns[id].body {
                Some(body) => analyze_fn(graph, id, body),
                None => FnFacts::default(),
            }
        })
        .collect();

    // Fixpoint: transitive lock sets and blocking flags through the call
    // graph. Bounded by the graph's diameter; each pass only grows sets.
    let n = graph.fns.len();
    let mut trans_acquired: Vec<BTreeSet<String>> =
        facts.iter().map(|f| f.acquired.clone()).collect();
    let mut blocking: Vec<bool> = (0..n)
        .map(|id| facts[id].blocking_direct || graph.fns[id].annotated_blocking)
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            for site in &facts[id].calls {
                let Some(callee) = site.callee else { continue };
                if blocking[callee] && !blocking[id] {
                    blocking[id] = true;
                    changed = true;
                }
                if !trans_acquired[callee].is_subset(&trans_acquired[id]) {
                    let add: Vec<String> = trans_acquired[callee]
                        .difference(&trans_acquired[id])
                        .cloned()
                        .collect();
                    trans_acquired[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    // Lock-order edges: (held, acquired) → first witness (file, line).
    let mut order: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (id, fn_facts) in facts.iter().enumerate() {
        let file = graph.files[graph.fns[id].file].rel_path.clone();
        for (lock, line, held) in &fn_facts.acquisitions {
            if held.contains(lock) {
                findings.push(Finding {
                    rule: Rule::L006,
                    file: file.clone(),
                    line: *line,
                    message: format!("re-entrant acquisition of `{lock}` (already held)"),
                });
                continue;
            }
            for h in held {
                order
                    .entry((h.clone(), lock.clone()))
                    .or_insert_with(|| (file.clone(), *line));
            }
        }
        for site in &facts[id].calls {
            if site.held.is_empty() {
                continue;
            }
            // L007: blocking work under a live guard.
            let callee_blocks = site.callee.is_some_and(|c| blocking[c]);
            if site.blocking_by_name || callee_blocks {
                let held = site.held.iter().cloned().collect::<Vec<_>>().join("`, `");
                findings.push(Finding {
                    rule: Rule::L007,
                    file: file.clone(),
                    line: site.line,
                    message: format!("blocking call `{}` while holding `{held}`", site.name),
                });
            }
            // L006 via callee: locks the callee (transitively) takes are
            // ordered after every lock held here.
            if let Some(callee) = site.callee {
                for lock in &trans_acquired[callee] {
                    if site.held.contains(lock) {
                        findings.push(Finding {
                            rule: Rule::L006,
                            file: file.clone(),
                            line: site.line,
                            message: format!(
                                "call to `{}` may re-acquire `{lock}` already held",
                                site.name
                            ),
                        });
                        continue;
                    }
                    for h in &site.held {
                        order
                            .entry((h.clone(), lock.clone()))
                            .or_insert_with(|| (file.clone(), site.line));
                    }
                }
            }
        }
    }

    // Cycle detection over the order graph: any edge inside a non-trivial
    // strongly connected component is part of an acquisition-order cycle.
    let scc = scc_components(&order);
    for ((a, b), (file, line)) in &order {
        if a != b && scc.contains_key(a) && scc.get(a) == scc.get(b) {
            findings.push(Finding {
                rule: Rule::L006,
                file: file.clone(),
                line: *line,
                message: format!("lock-order cycle: `{a}` is acquired before `{b}` here, but the reverse order also exists"),
            });
        }
    }
    findings
}

/// Assigns each node of the order graph to a strongly connected component;
/// only nodes in components of size ≥ 2 are returned.
fn scc_components(order: &BTreeMap<(String, String), (String, u32)>) -> BTreeMap<String, usize> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    let mut fwd: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in order.keys() {
        nodes.insert(a);
        nodes.insert(b);
        fwd.entry(a).or_default().push(b);
    }
    // Kosaraju: forward finish order, then reverse-graph sweeps.
    let mut finish: Vec<&String> = Vec::new();
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    for start in &nodes {
        if seen.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit post-visit marker.
        let mut stack: Vec<(&String, bool)> = vec![(start, false)];
        while let Some((node, post)) = stack.pop() {
            if post {
                finish.push(node);
                continue;
            }
            if !seen.insert(node) {
                continue;
            }
            stack.push((node, true));
            if let Some(nexts) = fwd.get(node) {
                for next in nexts {
                    if !seen.contains(*next) {
                        stack.push((next, false));
                    }
                }
            }
        }
    }
    let mut rev: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in order.keys() {
        rev.entry(b).or_default().push(a);
    }
    let mut comp: BTreeMap<String, usize> = BTreeMap::new();
    let mut assigned: BTreeSet<&String> = BTreeSet::new();
    let mut comp_id = 0usize;
    for node in finish.iter().rev() {
        if assigned.contains(node) {
            continue;
        }
        let mut members = Vec::new();
        let mut stack = vec![*node];
        while let Some(cur) = stack.pop() {
            if !assigned.insert(cur) {
                continue;
            }
            members.push(cur.clone());
            if let Some(prevs) = rev.get(cur) {
                for prev in prevs {
                    if !assigned.contains(*prev) {
                        stack.push(prev);
                    }
                }
            }
        }
        if members.len() >= 2 {
            for m in members {
                comp.insert(m, comp_id);
            }
            comp_id += 1;
        }
    }
    comp
}

// ----------------------------------------------------------------------
// Intra-procedural guard interpreter
// ----------------------------------------------------------------------

struct Interp<'g, 'a> {
    graph: &'g CallGraph<'a>,
    fn_id: usize,
    krate: String,
    facts: FnFacts,
    /// Live guards: stack of (lock id or None when unidentifiable,
    /// binding local name or None for a statement temporary).
    held: Vec<HeldGuard>,
    /// Scope stack of local names bound per block (guards + aliases).
    scopes: Vec<Vec<String>>,
    /// Local name → guard: index is implicit via `held` search by name.
    /// Local name → place alias (`let q = &shared.queue`).
    aliases: BTreeMap<String, String>,
    /// Locals that *are* locks (`let m = Mutex::new(..)`).
    lock_locals: BTreeSet<String>,
}

struct HeldGuard {
    lock: Option<String>,
    local: Option<String>,
}

/// The abstract value of an expression: at most "a guard we just created
/// or looked up" plus its place.
#[derive(Default)]
struct Val {
    /// Index into `held` when the value carries a live guard.
    guard: Option<usize>,
    place: Option<String>,
}

fn analyze_fn(graph: &CallGraph, fn_id: usize, body: &Block) -> FnFacts {
    let krate = graph.files[graph.fns[fn_id].file].crate_name.clone();
    let mut interp = Interp {
        graph,
        fn_id,
        krate,
        facts: FnFacts::default(),
        held: Vec::new(),
        scopes: Vec::new(),
        aliases: BTreeMap::new(),
        lock_locals: BTreeSet::new(),
    };
    interp.run_block(body);
    interp.facts
}

impl Interp<'_, '_> {
    fn held_ids(&self) -> BTreeSet<String> {
        self.held.iter().filter_map(|g| g.lock.clone()).collect()
    }

    /// The lock identity for a receiver/argument place, or `None` when
    /// unidentifiable (generic parameters, call results).
    fn lock_identity(&self, place: &str) -> Option<String> {
        // One level of alias chasing.
        let place = self.aliases.get(place).map(String::as_str).unwrap_or(place);
        let last = place.rsplit(['.', ':']).next().filter(|s| !s.is_empty())?;
        let dotted = place.contains('.') || place.contains("::");
        let is_known = dotted
            || self.lock_locals.contains(place)
            || last.chars().any(|c| c.is_ascii_uppercase());
        if !is_known || last == "self" {
            return None;
        }
        Some(format!("{}::{last}", self.krate))
    }

    fn acquire(&mut self, place: Option<String>, line: u32) -> Val {
        let lock = place.as_deref().and_then(|p| self.lock_identity(p));
        if let Some(id) = &lock {
            let held_before = self.held_ids();
            self.facts
                .acquisitions
                .push((id.clone(), line, held_before));
            self.facts.acquired.insert(id.clone());
        }
        self.held.push(HeldGuard { lock, local: None });
        Val {
            guard: Some(self.held.len() - 1),
            place: None,
        }
    }

    fn release_guard_of_local(&mut self, name: &str) {
        if let Some(pos) = self
            .held
            .iter()
            .rposition(|g| g.local.as_deref() == Some(name))
        {
            self.held.remove(pos);
        }
    }

    fn run_block(&mut self, block: &Block) {
        self.scopes.push(Vec::new());
        for stmt in &block.stmts {
            let temps_floor = self.held.len();
            match stmt {
                Stmt::Let {
                    name,
                    ty,
                    init,
                    else_block,
                    ..
                } => {
                    let val = match init {
                        Some(e) => self.eval(e),
                        None => Val::default(),
                    };
                    if let Some(b) = else_block {
                        self.run_block(b);
                    }
                    if let Some(n) = name {
                        if n != "_" {
                            if let Some(gi) = val.guard {
                                if gi < self.held.len() {
                                    self.held[gi].local = Some(n.clone());
                                    self.note_binding(n);
                                }
                            } else if let Some(p) = &val.place {
                                self.aliases.insert(n.clone(), p.clone());
                                self.note_binding(n);
                            } else if ty.contains("Mutex")
                                || ty.contains("RwLock")
                                || is_lock_ctor(init.as_ref())
                            {
                                self.lock_locals.insert(n.clone());
                                self.note_binding(n);
                            }
                        }
                    }
                }
                Stmt::Expr(e) => {
                    self.eval(e);
                }
                Stmt::Item(_) => {}
            }
            // Statement temporaries (guards never bound to a local) die
            // at the end of the statement.
            while self.held.len() > temps_floor {
                let last_unbound = self
                    .held
                    .iter()
                    .rposition(|g| g.local.is_none())
                    .filter(|p| *p >= temps_floor);
                match last_unbound {
                    Some(p) => {
                        self.held.remove(p);
                    }
                    None => break,
                }
            }
        }
        // Block end: release guards and names bound in this scope.
        if let Some(names) = self.scopes.pop() {
            for name in names.iter().rev() {
                self.release_guard_of_local(name);
                self.aliases.remove(name);
                self.lock_locals.remove(name);
            }
        }
    }

    fn eval(&mut self, expr: &Expr) -> Val {
        match expr {
            Expr::Path { .. } | Expr::Field { .. } => {
                let place = expr.place();
                // Reading a guard local: surface its guard index so
                // passthrough methods and rebinding work.
                let guard = place.as_deref().and_then(|p| {
                    self.held
                        .iter()
                        .rposition(|g| g.local.as_deref() == Some(p))
                });
                Val { guard, place }
            }
            Expr::Ref { expr, .. } | Expr::Unary { expr, .. } | Expr::Try { expr, .. } => {
                self.eval(expr)
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let rv = self.eval(recv);
                for a in args {
                    self.eval(a);
                }
                if ACQUIRE_METHODS.contains(&method.as_str()) && args.is_empty() {
                    return self.acquire(rv.place, *line);
                }
                if GUARD_PASSTHROUGH.contains(&method.as_str()) {
                    return Val {
                        guard: rv.guard,
                        place: None,
                    };
                }
                if CONDVAR_WAITS.contains(&method.as_str()) {
                    // Returns the re-acquired guard of its argument; model
                    // as passthrough of the first arg's guard.
                    let g = args.first().and_then(|a| match a {
                        Expr::Path { .. } | Expr::Field { .. } => a.place().and_then(|p| {
                            self.held
                                .iter()
                                .rposition(|h| h.local.as_deref() == Some(p.as_str()))
                        }),
                        _ => None,
                    });
                    return Val {
                        guard: g,
                        place: None,
                    };
                }
                self.record_call(expr, method, *line);
                Val::default()
            }
            Expr::Call { callee, args, line } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    let name = segs.last().map(String::as_str).unwrap_or("");
                    // `drop(g)` releases the guard early.
                    if name == "drop" && segs.len() == 1 {
                        if let Some(p) = args.first().and_then(Expr::place) {
                            for a in args {
                                self.eval(a);
                            }
                            self.release_guard_of_local(&p);
                            return Val::default();
                        }
                    }
                    // The workspace's poison-recovery helper: `lock(&m)`
                    // acquires m's guard at the call site.
                    if name == "lock" && segs.len() == 1 && args.len() == 1 {
                        let place = args[0].place();
                        self.eval(&args[0]);
                        return self.acquire(place, *line);
                    }
                }
                for a in args {
                    self.eval(a);
                }
                let name = match callee.as_ref() {
                    Expr::Path { segs, .. } => segs.join("::"),
                    _ => String::from("<indirect>"),
                };
                self.record_call(expr, &name, *line);
                Val::default()
            }
            Expr::Assign { lhs, rhs, line: _ } => {
                let rv = self.eval(rhs);
                if let Some(p) = lhs.place() {
                    if !p.contains('.') {
                        // Rebinding a local: the old guard dies, the new one
                        // binds (`q = ready.wait(q)` rebinds the same one).
                        let already = rv.guard.is_some_and(|gi| {
                            self.held
                                .get(gi)
                                .is_some_and(|g| g.local.as_deref() == Some(&p))
                        });
                        if !already {
                            let old = self
                                .held
                                .iter()
                                .rposition(|g| g.local.as_deref() == Some(&p));
                            if let Some(pos) = old {
                                self.held.remove(pos);
                            }
                            if let Some(mut gi) = rv.guard {
                                if let Some(pos) = old {
                                    if pos < gi {
                                        gi -= 1;
                                    }
                                }
                                if gi < self.held.len() {
                                    self.held[gi].local = Some(p);
                                }
                            }
                        }
                    }
                }
                Val::default()
            }
            Expr::Block(b) => {
                self.run_block(b);
                Val::default()
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.eval(cond);
                self.run_block(then);
                if let Some(e) = else_ {
                    self.eval(e);
                }
                Val::default()
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                let sv = self.eval(scrutinee);
                // A guard produced by the scrutinee flows into the arms
                // (e.g. `match m.lock() { Ok(g) => ... }`) — keep it live
                // across the arms, released as a temp at statement end.
                let _ = sv;
                for a in arms {
                    self.eval(a);
                }
                Val::default()
            }
            Expr::While { cond, body, .. } => {
                self.eval(cond);
                self.run_block(body);
                Val::default()
            }
            Expr::Loop { body, .. } => {
                self.run_block(body);
                Val::default()
            }
            Expr::ForLoop { iter, body, .. } => {
                self.eval(iter);
                self.run_block(body);
                Val::default()
            }
            Expr::Closure { .. } => {
                // Closure bodies run at an unknown time with unknown locks
                // held; analyzing them inline would claim the current
                // guards are held, which is wrong for spawned/deferred
                // closures. Skipped — documented false negative.
                Val::default()
            }
            Expr::Return { expr, .. } => {
                if let Some(e) = expr {
                    let v = self.eval(e);
                    // A returned guard escapes to the caller.
                    if let Some(gi) = v.guard {
                        if gi < self.held.len() && self.held[gi].local.is_none() {
                            self.held.remove(gi);
                        }
                    }
                }
                Val::default()
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.eval(lhs);
                self.eval(rhs);
                Val::default()
            }
            Expr::Cast { expr, .. } => {
                self.eval(expr);
                Val::default()
            }
            Expr::Index { recv, index, .. } => {
                self.eval(recv);
                self.eval(index);
                Val::default()
            }
            Expr::Tuple { exprs, .. }
            | Expr::Array { exprs, .. }
            | Expr::StructLit { fields: exprs, .. } => {
                for e in exprs {
                    self.eval(e);
                }
                Val::default()
            }
            Expr::Lit { .. } | Expr::Macro { .. } | Expr::Other { .. } => Val::default(),
        }
    }

    /// Records a name bound in the innermost scope (for block-end release).
    fn note_binding(&mut self, n: &str) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.push(n.to_string());
        }
    }

    /// Is this expression a live guard local (or a field of one)?
    fn is_held_guard(&self, expr: &Expr) -> bool {
        expr.place().is_some_and(|p| {
            let root = p.split('.').next().unwrap_or(p.as_str());
            self.held.iter().any(|g| g.local.as_deref() == Some(root))
        })
    }

    fn record_call(&mut self, expr: &Expr, name: &str, line: u32) {
        let blocking_by_name = match expr {
            // Calling a blocking-named method *on the held guard itself*
            // (`chain.flush()` where `chain = self.firewall.lock()`) is
            // operating on the data the lock protects — the reason the
            // lock is held — not a call out while holding it.
            Expr::MethodCall { recv, method, .. } => {
                BLOCKING_METHODS.contains(&method.as_str()) && !self.is_held_guard(recv)
            }
            Expr::Call { callee, .. } => match callee.as_ref() {
                Expr::Path { segs, .. } => {
                    segs.len() >= 2
                        && BLOCKING_PATHS
                            .iter()
                            .any(|(a, b)| segs[segs.len() - 2] == *a && segs[segs.len() - 1] == *b)
                }
                _ => false,
            },
            _ => false,
        };
        if blocking_by_name {
            self.facts.blocking_direct = true;
        }
        let callee = self.graph.resolve(self.fn_id, expr);
        self.facts.calls.push(CallSite {
            callee,
            name: name.to_string(),
            line,
            held: self.held_ids(),
            blocking_by_name,
        });
    }
}

fn is_lock_ctor(init: Option<&Expr>) -> bool {
    match init {
        Some(Expr::Call { callee, .. }) => match callee.as_ref() {
            Expr::Path { segs, .. } => {
                segs.len() >= 2
                    && (segs[segs.len() - 2] == "Mutex" || segs[segs.len() - 2] == "RwLock")
            }
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::tests::parse_files;
    use crate::callgraph::ParsedFile;

    fn lint(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<ParsedFile> = parse_files(sources);
        let graph = CallGraph::build(&files);
        let mut findings = lint_locks(&graph);
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule.code()).cmp(&(&b.file, b.line, b.rule.code()))
        });
        findings
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l006_two_lock_cycle_fires() {
        // f takes a then b; g takes b then a — the classic AB/BA deadlock.
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
               fn g(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n\
             }\n",
        )]);
        let cycle: Vec<&Finding> = f
            .iter()
            .filter(|f| f.rule == Rule::L006 && f.message.contains("cycle"))
            .collect();
        assert_eq!(cycle.len(), 2, "{f:?}");
        assert!(cycle.iter().any(|f| f.line == 3));
        assert!(cycle.iter().any(|f| f.line == 4));
    }

    #[test]
    fn l006_consistent_order_is_quiet() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
               fn g(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l006_reentrant_double_lock_fires() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { a: Mutex<u32> }\n\
             impl S { fn f(&self) { let g1 = self.a.lock(); let g2 = self.a.lock(); } }\n",
        )]);
        assert_eq!(rules_of(&f), vec![Rule::L006]);
        assert!(f[0].message.contains("re-entrant"));
    }

    #[test]
    fn l006_cycle_through_call_graph() {
        // f: lock a → call h (locks b). g: lock b → call k (locks a).
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let ga = self.a.lock(); self.h(); }\n\
               fn h(&self) { let gb = self.b.lock(); }\n\
               fn g(&self) { let gb = self.b.lock(); self.k(); }\n\
               fn k(&self) { let ga = self.a.lock(); }\n\
             }\n",
        )]);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::L006 && f.message.contains("cycle")),
            "{f:?}"
        );
    }

    #[test]
    fn l006_callee_reacquires_held_lock() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
               fn f(&self) { let ga = self.a.lock(); self.h(); }\n\
               fn h(&self) { let ga = self.a.lock(); }\n\
             }\n",
        )]);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::L006 && f.message.contains("may re-acquire")),
            "{f:?}"
        );
    }

    #[test]
    fn l007_publish_under_lock_fires_pr3_bug_class() {
        // The PR 3 bug: EventBus::publish-style call while holding the
        // subscribers lock.
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct Bus { subscribers: Mutex<Vec<u32>> }\n\
             impl Bus {\n\
               fn notify(&self, t: &Telemetry) {\n\
                 let subs = self.subscribers.lock();\n\
                 t.publish(1);\n\
               }\n\
             }\n",
        )]);
        assert_eq!(rules_of(&f), vec![Rule::L007]);
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("publish"));
        assert!(f[0].message.contains("x::subscribers"));
    }

    #[test]
    fn l007_guard_dropped_before_call_is_quiet() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct Bus { subscribers: Mutex<Vec<u32>> }\n\
             impl Bus {\n\
               fn notify(&self, t: &Telemetry) {\n\
                 let subs = self.subscribers.lock();\n\
                 drop(subs);\n\
                 t.publish(1);\n\
               }\n\
               fn scoped(&self, t: &Telemetry) {\n\
                 { let subs = self.subscribers.lock(); }\n\
                 t.publish(2);\n\
               }\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l007_blocking_named_method_on_the_guard_itself_is_exempt() {
        // `chain.flush()` on the guard clears the guarded rule chain —
        // operating on the data the lock protects, not calling out.
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct C { firewall: Mutex<Chain> }\n\
             impl C {\n\
               fn program(&self) {\n\
                 let mut chain = self.firewall.lock();\n\
                 chain.flush();\n\
               }\n\
               fn bad(&self, out: &mut W) {\n\
                 let chain = self.firewall.lock();\n\
                 out.flush();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(rules_of(&f), vec![Rule::L007]);
        assert_eq!(f[0].line, 9);
    }

    #[test]
    fn l007_annotated_blocking_fn_propagates_through_calls() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "// imcf-lint: blocking\n\
             fn slow_io() {}\n\
             fn indirect() { slow_io(); }\n\
             struct S { m: Mutex<u32> }\n\
             impl S { fn f(&self) { let g = self.m.lock(); indirect(); } }\n",
        )]);
        assert_eq!(rules_of(&f), vec![Rule::L007]);
        assert!(f[0].message.contains("indirect"));
    }

    #[test]
    fn l007_condvar_wait_is_exempt() {
        // The net worker-loop pattern: wait returns the guard, loop
        // continues, guard released at block end.
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { queue: Mutex<Vec<u32>>, ready: Condvar }\n\
             impl S {\n\
               fn next(&self) -> u32 {\n\
                 let mut q = self.queue.lock();\n\
                 loop {\n\
                   if let Some(v) = q.pop() { return v; }\n\
                   q = self.ready.wait(q);\n\
                 }\n\
               }\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn free_lock_helper_counts_as_acquisition() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { queue: Mutex<Vec<u32>>, t: Telemetry }\n\
             fn lock<T>(m: &Mutex<T>) -> MutexGuard<T> { m.lock().unwrap_or_else(PoisonError::into_inner) }\n\
             fn f(s: &S) { let q = lock(&s.queue); s.t.publish(1); }\n",
        )]);
        assert_eq!(rules_of(&f), vec![Rule::L007]);
        assert!(f[0].message.contains("x::queue"));
    }

    #[test]
    fn statement_temporary_guard_is_released() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "struct S { m: Mutex<Vec<u32>>, t: Telemetry }\n\
             impl S { fn f(&self) { self.m.lock().unwrap().push(1); self.t.publish(2); } }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn local_mutex_and_alias_identities() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "fn f(t: &Telemetry) { let m = Mutex::new(0u32); let g = m.lock(); t.publish(1); }\n",
        )]);
        assert_eq!(rules_of(&f), vec![Rule::L007]);
        assert!(f[0].message.contains("x::m"));
    }

    #[test]
    fn unidentifiable_receivers_do_not_create_noise() {
        // A generic parameter receiver has no identity: nothing to hold.
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "fn helper<T>(mutex: &Mutex<T>) -> MutexGuard<T> { mutex.lock().unwrap() }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_functions_are_exempt() {
        let f = lint(&[(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n  struct S { a: Mutex<u32> }\n  impl S { fn f(&self) { let g1 = self.a.lock(); let g2 = self.a.lock(); } }\n}\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
