//! The ratcheted baseline: `lint-baseline.toml` at the workspace root.
//!
//! The baseline records, per rule, the number of findings the workspace is
//! allowed to contain. `--check` fails when any rule exceeds its baseline;
//! `--write-baseline` rewrites the counts to the current state, and refuses
//! outright when any count would go *up* — CI runs `--check`, so a change
//! that raises a count cannot land without hand-editing this file, which
//! review treats as a regression.
//!
//! The format is a deliberately minimal TOML subset (one `[counts]` table
//! of `L00x = n` pairs) so no TOML dependency is needed.

use crate::rules::{Rule, ALL_RULES};
use std::collections::BTreeMap;
use std::path::Path;

/// Per-rule allowed finding counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<Rule, usize>,
}

impl Baseline {
    /// The allowed count for a rule (0 when absent).
    pub fn allowed(&self, rule: Rule) -> usize {
        self.counts.get(&rule).copied().unwrap_or(0)
    }

    /// Parses the baseline file content. Unknown keys and malformed lines
    /// are errors — a corrupt baseline must not silently allow findings.
    pub fn parse(content: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut in_counts = false;
        for (lineno, raw) in content.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                in_counts = line == "[counts]";
                if !in_counts {
                    return Err(format!(
                        "lint-baseline.toml:{}: unknown table `{line}`",
                        lineno + 1
                    ));
                }
                continue;
            }
            if !in_counts {
                return Err(format!(
                    "lint-baseline.toml:{}: entry outside [counts]",
                    lineno + 1
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint-baseline.toml:{}: expected `L00x = n`",
                    lineno + 1
                ));
            };
            let Some(rule) = Rule::from_code(key.trim()) else {
                return Err(format!(
                    "lint-baseline.toml:{}: unknown rule `{}`",
                    lineno + 1,
                    key.trim()
                ));
            };
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("lint-baseline.toml:{}: bad count", lineno + 1))?;
            counts.insert(rule, count);
        }
        Ok(Baseline { counts })
    }

    /// Loads the baseline from `<root>/lint-baseline.toml`. A missing file
    /// is an empty (all-zero) baseline.
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join("lint-baseline.toml");
        match std::fs::read_to_string(&path) {
            Ok(content) => Baseline::parse(&content),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Renders the baseline, preserving the header comment of the previous
    /// content when present (lines before the `[counts]` table).
    pub fn render(&self, previous_header: &str) -> String {
        let mut out = String::new();
        if previous_header.is_empty() {
            out.push_str(
                "# imcf-lint baseline — per-rule finding counts the workspace may contain.\n\
                 # Counts only ratchet down: CI runs `cargo run -p imcf-lint -- --check`,\n\
                 # so raising a count requires editing this file in the same change.\n",
            );
        } else {
            out.push_str(previous_header);
        }
        out.push_str("\n[counts]\n");
        for rule in ALL_RULES {
            out.push_str(&format!("{} = {}\n", rule.code(), self.allowed(rule)));
        }
        out
    }

    /// Writes the baseline to `<root>/lint-baseline.toml`, keeping any
    /// existing header comments.
    pub fn store(&self, root: &Path) -> Result<(), String> {
        let path = root.join("lint-baseline.toml");
        let header = match std::fs::read_to_string(&path) {
            Ok(existing) => existing
                .lines()
                .take_while(|l| l.trim().starts_with('#') || l.trim().is_empty())
                .collect::<Vec<_>>()
                .join("\n")
                .trim_end()
                .to_string(),
            Err(_) => String::new(),
        };
        std::fs::write(&path, self.render(&header))
            .map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let b = Baseline::parse("# header\n[counts]\nL001 = 12\nL003 = 0\n").unwrap();
        assert_eq!(b.allowed(Rule::L001), 12);
        assert_eq!(b.allowed(Rule::L003), 0);
        assert_eq!(b.allowed(Rule::L005), 0);
        let rendered = b.render("");
        let again = Baseline::parse(&rendered).unwrap();
        assert_eq!(b.allowed(Rule::L001), again.allowed(Rule::L001));
    }

    #[test]
    fn malformed_baselines_error() {
        assert!(Baseline::parse("[wrong]\nL001 = 1").is_err());
        assert!(Baseline::parse("[counts]\nL999 = 1").is_err());
        assert!(Baseline::parse("[counts]\nL001 = many").is_err());
        assert!(Baseline::parse("L001 = 1").is_err());
    }

    #[test]
    fn render_preserves_header() {
        let b = Baseline::parse("[counts]\nL002 = 3\n").unwrap();
        let out = b.render("# custom header\n# second line");
        assert!(out.starts_with("# custom header\n# second line"));
        assert!(out.contains("L002 = 3"));
    }
}
