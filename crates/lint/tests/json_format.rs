//! End-to-end checks over the real workspace: the JSON report must parse
//! with the in-tree JSON reader, and the report must be byte-identical
//! regardless of `--jobs` (CI runs the same smoke via the binary).

use imcf_lint::baseline::Baseline;
use imcf_lint::{lint_workspace_jobs, workspace};

fn root() -> std::path::PathBuf {
    workspace::find_root(&std::env::current_dir().expect("cwd")).expect("workspace root")
}

#[test]
fn json_report_parses_with_in_tree_reader() {
    let root = root();
    let report = lint_workspace_jobs(&root, 2).expect("lint");
    let baseline = Baseline::load(&root).expect("baseline");
    let json = report.render_json(&baseline);

    let value = serde_json::parse(&json).expect("render_json must be valid JSON");
    let files = match value.get("files") {
        Some(serde_json::Value::Number(n)) => n.as_f64(),
        other => panic!("files count missing: {other:?}"),
    };
    assert!(files > 0.0);
    let findings = value.get("findings").expect("findings array");
    assert!(findings.as_array().is_some());
    let counts = value.get("counts").expect("counts object");
    for rule in ["L001", "L005", "L006", "L007", "L008", "L009"] {
        let entry = counts.get(rule).unwrap_or_else(|| panic!("counts.{rule}"));
        assert!(entry.get("actual").is_some());
        assert!(entry.get("baseline").is_some());
    }
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let root = root();
    let baseline = Baseline::load(&root).expect("baseline");
    let sequential = lint_workspace_jobs(&root, 1).expect("lint -j1");
    let parallel = lint_workspace_jobs(&root, 4).expect("lint -j4");
    assert_eq!(
        sequential.render_json(&baseline),
        parallel.render_json(&baseline),
        "findings must not depend on worker scheduling"
    );
}
