//! # imcf-pool — deterministic scoped worker pool
//!
//! The experiment grid (every bench binary) and the Energy Planner's
//! independent-slot path are embarrassingly parallel: each cell is a pure
//! function of its inputs. This crate provides the fan-out machinery with a
//! **determinism contract**: the output of a parallel run is bit-identical
//! to the sequential run of the same work list, regardless of worker count
//! or scheduling order. Two rules make that true:
//!
//! 1. **Seeds are derived, never shared.** A task never consumes entropy
//!    from a stream another task also touches; callers derive each task's
//!    RNG seed from the run seed and the *task index* via [`derive_seed`]
//!    (`seed ⊕ splitmix64(index)`), so the seed depends only on *which*
//!    task it is, not on when it runs.
//! 2. **Results are collected by index, never by completion order.**
//!    [`map_indexed`] writes each result into its input slot, so the
//!    returned vector (and any fold over it) is order-independent.
//!
//! The pool is dependency-free: hand-rolled scoped threads over a chunked
//! work queue (`Mutex<VecDeque>` + `Condvar`), no external crates. Worker
//! panics are captured and re-raised on the caller thread after the scope
//! drains, matching the sequential behaviour of a panicking iteration.
//!
//! Worker counts resolve via [`resolve_jobs`]: an explicit `--jobs N` flag
//! beats the `IMCF_JOBS` environment variable beats the machine's available
//! cores. `jobs = 1` degenerates to an inline loop on the caller thread —
//! no threads are spawned at all.
//!
//! Telemetry: `pool.workers` (gauge), `pool.tasks` (counter — work
//! *items* submitted to [`map_indexed`], independent of worker count or
//! chunking) and `pool.queue_depth` (gauge) are registered in the
//! `imcf-telemetry` catalog and updated as scopes run.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// A queued unit of work, erased to a boxed closure borrowing the caller's
/// environment (`'env` outlives the [`scope`] call).
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Lock a std mutex without poisoning semantics (a worker panic is
/// captured and re-raised separately; the shared state stays usable).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared state between the scope owner and its workers.
struct Shared<'env> {
    queue: Mutex<VecDeque<Job<'env>>>,
    ready: Condvar,
    /// Set once the scope body returned: workers drain and exit.
    closed: AtomicBool,
    /// First captured worker panic, re-raised by the scope owner.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<'env> Shared<'env> {
    fn new() -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    fn close(&self) {
        // The flag must flip while holding the condvar's mutex: a worker
        // that found the queue empty and read `closed == false` under the
        // lock, but has not yet parked in `Condvar::wait`, still holds the
        // mutex — so taking it here orders the store (and the wakeup)
        // after that worker parks. Storing outside the lock loses the
        // notification and deadlocks the scope join.
        let guard = lock(&self.queue);
        self.closed.store(true, Ordering::SeqCst);
        drop(guard);
        self.ready.notify_all();
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.panic).take()
    }
}

/// Handle passed to the [`scope`] body for submitting tasks.
pub struct Spawner<'s, 'env> {
    shared: &'s Shared<'env>,
}

impl<'env> Spawner<'_, 'env> {
    /// Submits a task to the scope's work queue. Tasks run on the scope's
    /// workers in FIFO submission order (with one worker this is exactly
    /// sequential execution); all tasks complete before [`scope`] returns.
    ///
    /// Jobs are not counted in `pool.tasks` — that counter's unit is *work
    /// items*, accounted by [`map_indexed`], which may pack many items
    /// into one spawned job.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        let depth = {
            let mut q = lock(&self.shared.queue);
            q.push_back(Box::new(job));
            q.len()
        };
        imcf_telemetry::global()
            .gauge("pool.queue_depth")
            .set(depth as f64);
        self.shared.ready.notify_one();
    }
}

/// Worker loop: pop jobs until the queue is drained and the scope closed.
fn worker(shared: &Shared<'_>) {
    let queue_depth = imcf_telemetry::global().gauge("pool.queue_depth");
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    queue_depth.set(q.len() as f64);
                    break job;
                }
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking task must not kill the worker (queued siblings still
        // run, mirroring how a sequential loop would have produced their
        // results before unwinding reached the caller); the first payload
        // is re-raised by the scope owner after the drain.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let mut slot = lock(&shared.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

/// Runs `f` with a [`Spawner`] backed by `jobs` worker threads. Every task
/// submitted inside `f` completes before `scope` returns; a panic in any
/// task (or in `f` itself) is re-raised on the caller thread afterwards.
///
/// With `jobs <= 1` a single worker thread drains the queue in FIFO order,
/// so submission order is execution order.
pub fn scope<'env, T, F>(jobs: usize, f: F) -> T
where
    F: FnOnce(&Spawner<'_, 'env>) -> T,
{
    let jobs = jobs.max(1);
    let shared = Shared::new();
    imcf_telemetry::global()
        .gauge("pool.workers")
        .set(jobs as f64);
    let outcome = std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| worker(&shared));
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&Spawner { shared: &shared })));
        shared.close();
        outcome
        // The std scope joins every worker here, so all tasks are done
        // (or their panics captured) before `scope` returns.
    });
    if let Some(payload) = shared.take_panic() {
        std::panic::resume_unwind(payload);
    }
    match outcome {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Maps `f` over `items` on `jobs` workers, returning results **in input
/// order**. Work is distributed as contiguous index chunks through the
/// scope queue; each result lands in its input's slot, so the output is
/// bit-identical to `items.into_iter().enumerate().map(f).collect()`
/// for any pure `f`, whatever the worker count.
///
/// `jobs <= 1` (or a single item) short-circuits to exactly that inline
/// loop — no threads, no queue.
pub fn map_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    // `pool.tasks` counts *work items* at submission, the same unit on
    // both paths — its value must not change meaning with worker count.
    imcf_telemetry::global().counter("pool.tasks").add(n as u64);
    if jobs == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    // Chunk the work list: ~4 chunks per worker balances queue overhead
    // against tail latency when task costs are uneven.
    let chunk_size = n.div_ceil(jobs * 4).max(1);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::new();
    let mut items = items.into_iter();
    let mut start = 0;
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        let len = chunk.len();
        chunks.push((start, chunk));
        start += len;
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    let results_ref = &results;
    scope(jobs, |s| {
        for (chunk_start, chunk) in chunks {
            s.spawn(move || {
                for (offset, item) in chunk.into_iter().enumerate() {
                    let index = chunk_start + offset;
                    let value = f(index, item);
                    *lock(&results_ref[index]) = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(
            |(i, slot)| match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                Some(value) => value,
                None => panic!("pool: task {i} produced no result"),
            },
        )
        .collect()
}

/// SplitMix64 finalizer: a bijective avalanche mix, so distinct task
/// indices always map to distinct derived seeds. The definition lives in
/// `imcf_telemetry::trace` (trace-id derivation shares it); this alias
/// keeps the pool's seed contract pinned to the same bits.
fn splitmix64(x: u64) -> u64 {
    imcf_telemetry::trace::splitmix64(x)
}

/// Derives the RNG seed for task `task_index` of a run seeded with `seed`:
/// `seed ⊕ splitmix64(task_index)`. The derivation depends only on the
/// task's index, never on scheduling, which is what keeps parallel runs
/// bit-identical to sequential ones.
pub fn derive_seed(seed: u64, task_index: u64) -> u64 {
    seed ^ splitmix64(task_index)
}

/// The machine's available core count (1 when undetectable).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a worker count: an explicit flag value beats `IMCF_JOBS`
/// beats [`available_jobs`]. Zero values are treated as unset.
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    flag.filter(|n| *n > 0)
        .or_else(|| {
            std::env::var("IMCF_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|n: &usize| *n > 0)
        })
        .unwrap_or_else(available_jobs)
}

/// Scans an argv-style iterator for `--jobs N` or `--jobs=N` and resolves
/// the worker count via [`resolve_jobs`]. Malformed values fall through
/// to the environment/core default. Bench binaries call this with
/// `std::env::args()`.
pub fn jobs_from_args<I: IntoIterator<Item = String>>(args: I) -> usize {
    let args: Vec<String> = args.into_iter().collect();
    let flag = args.iter().enumerate().find_map(|(i, a)| {
        if a == "--jobs" {
            args.get(i + 1).and_then(|v| v.parse().ok())
        } else {
            a.strip_prefix("--jobs=").and_then(|v| v.parse().ok())
        }
    });
    resolve_jobs(flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_empty_input() {
        let out: Vec<u64> = map_indexed(4, Vec::<u64>::new(), |_, x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_indexed(4, items.clone(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn jobs_one_is_inline_and_identical() {
        let items: Vec<u64> = (0..37).collect();
        let seq = map_indexed(1, items.clone(), |i, x| derive_seed(x, i as u64));
        let par = map_indexed(4, items, |i, x| derive_seed(x, i as u64));
        assert_eq!(seq, par);
    }

    #[test]
    fn more_tasks_than_workers() {
        let counter = AtomicUsize::new(0);
        let out = map_indexed(3, (0..1000u64).collect(), |_, x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = map_indexed(64, vec![10u64, 20], |i, x| x + i as u64);
        assert_eq!(out, vec![10, 21]);
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn panic_in_task_propagates() {
        map_indexed(4, (0..32u64).collect(), |_, x| {
            if x == 17 {
                panic!("task boom");
            }
            x
        });
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(4, |s| {
            for _ in 0..50 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    #[should_panic(expected = "scope body boom")]
    fn panic_in_scope_body_propagates_without_deadlock() {
        scope(2, |s| {
            s.spawn(|| {});
            panic!("scope body boom");
        });
    }

    #[test]
    fn siblings_still_run_after_a_task_panics() {
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let seen = std::sync::Arc::clone(&counter);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(2, |s| {
                s.spawn(|| panic!("first dies"));
                for _ in 0..10 {
                    let counter = std::sync::Arc::clone(&counter);
                    s.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the task panic must surface");
        assert_eq!(seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(42, i)), "collision at index {i}");
        }
        // Stability: the derivation is part of the determinism contract,
        // so lock the constant in.
        assert_eq!(derive_seed(0, 0), splitmix64(0));
        assert_eq!(derive_seed(7, 3) ^ 7, splitmix64(3));
    }

    #[test]
    fn jobs_resolution_precedence() {
        // Flag beats everything.
        assert_eq!(resolve_jobs(Some(3)), 3);
        // Zero flag is "unset".
        assert!(resolve_jobs(Some(0)) >= 1);
        // argv scan, both accepted spellings.
        let argv = ["bench", "--jobs", "5"].map(String::from);
        assert_eq!(jobs_from_args(argv), 5);
        let argv = ["bench", "--jobs=6"].map(String::from);
        assert_eq!(jobs_from_args(argv), 6);
        let argv = ["bench"].map(String::from);
        assert!(jobs_from_args(argv) >= 1);
    }

    #[test]
    fn map_results_match_under_many_worker_counts() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| derive_seed(*x, i as u64))
            .collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = map_indexed(jobs, items.clone(), |i, x| derive_seed(x, i as u64));
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }
}
