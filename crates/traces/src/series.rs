//! Hourly-resampled trace series: the planner-facing view of a dataset.
//!
//! Raw readings arrive at second/minute cadence; the planner runs hourly.
//! [`HourlySeries`] is a dense per-hour vector; [`ZoneTrace`] groups the
//! temperature, light and door series of one zone; [`Trace`] is a whole
//! dataset (one or many zones).

use crate::reading::{SensorKind, SensorReading};
use imcf_core::calendar::PaperCalendar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dense hourly series of sensor values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySeries {
    values: Vec<f64>,
}

impl HourlySeries {
    /// Creates a series from hourly values.
    pub fn new(values: Vec<f64>) -> Self {
        HourlySeries { values }
    }

    /// Length in hours.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at an hour index (panics when out of range).
    pub fn at(&self, hour: u64) -> f64 {
        self.values[hour as usize]
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean of the series (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Resamples raw readings of one sensor into hourly means over
    /// `horizon_hours`. Hours with no readings inherit the previous hour's
    /// value (or `fill` at the very start).
    pub fn from_readings<'a, I>(readings: I, horizon_hours: u64, fill: f64) -> HourlySeries
    where
        I: IntoIterator<Item = &'a SensorReading>,
    {
        let mut sums = vec![0.0f64; horizon_hours as usize];
        let mut counts = vec![0u32; horizon_hours as usize];
        for r in readings {
            let h = r.hour_index();
            if h < horizon_hours {
                sums[h as usize] += r.value;
                counts[h as usize] += 1;
            }
        }
        let mut values = Vec::with_capacity(horizon_hours as usize);
        let mut last = fill;
        for (sum, count) in sums.into_iter().zip(counts) {
            if count > 0 {
                last = sum / count as f64;
            }
            values.push(last);
        }
        HourlySeries { values }
    }
}

/// All hourly series of one zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneTrace {
    /// Zone name (room or apartment identifier).
    pub zone: String,
    /// Indoor unactuated temperature, °C.
    pub temperature: HourlySeries,
    /// Indoor ambient illuminance, 0–100.
    pub light: HourlySeries,
    /// Fraction of the hour a door stood open, 0–1.
    pub door_open: HourlySeries,
}

impl ZoneTrace {
    /// Horizon length in hours (the minimum across series).
    pub fn horizon_hours(&self) -> u64 {
        self.temperature
            .len()
            .min(self.light.len())
            .min(self.door_open.len()) as u64
    }
}

/// A dataset: one or many zone traces over a common horizon and calendar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The calendar anchoring hour 0 (the CASAS traces start in October).
    pub calendar: PaperCalendar,
    /// Per-zone series.
    pub zones: Vec<ZoneTrace>,
}

impl Trace {
    /// Creates a trace.
    pub fn new(calendar: PaperCalendar, zones: Vec<ZoneTrace>) -> Self {
        Trace { calendar, zones }
    }

    /// The common horizon (minimum across zones; 0 when empty).
    pub fn horizon_hours(&self) -> u64 {
        self.zones
            .iter()
            .map(|z| z.horizon_hours())
            .min()
            .unwrap_or(0)
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Looks up a zone by name.
    pub fn zone(&self, name: &str) -> Option<&ZoneTrace> {
        self.zones.iter().find(|z| z.zone == name)
    }

    /// Builds a trace by resampling raw readings grouped by zone.
    pub fn from_readings(
        calendar: PaperCalendar,
        readings: &[SensorReading],
        horizon_hours: u64,
    ) -> Trace {
        let mut by_zone: BTreeMap<&str, Vec<&SensorReading>> = BTreeMap::new();
        for r in readings {
            by_zone.entry(r.zone.as_str()).or_default().push(r);
        }
        let zones = by_zone
            .into_iter()
            .map(|(zone, rs)| {
                let of = |kind: SensorKind, fill: f64| {
                    HourlySeries::from_readings(
                        rs.iter().copied().filter(|r| r.sensor == kind),
                        horizon_hours,
                        fill,
                    )
                };
                ZoneTrace {
                    zone: zone.to_string(),
                    temperature: of(SensorKind::Temperature, 18.0),
                    light: of(SensorKind::Light, 0.0),
                    door_open: of(SensorKind::Door, 0.0),
                }
            })
            .collect();
        Trace { calendar, zones }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resampling_averages_within_hours() {
        let readings = [
            SensorReading::new(0, "flat", SensorKind::Temperature, 10.0),
            SensorReading::new(1800, "flat", SensorKind::Temperature, 20.0),
            SensorReading::new(3600, "flat", SensorKind::Temperature, 30.0),
        ];
        let s = HourlySeries::from_readings(readings.iter(), 3, 0.0);
        assert_eq!(s.at(0), 15.0);
        assert_eq!(s.at(1), 30.0);
        // Hour 2 has no readings: carries forward.
        assert_eq!(s.at(2), 30.0);
    }

    #[test]
    fn gaps_at_start_use_fill() {
        let readings = [SensorReading::new(
            2 * 3600,
            "flat",
            SensorKind::Light,
            50.0,
        )];
        let s = HourlySeries::from_readings(readings.iter(), 4, 7.0);
        assert_eq!(s.values(), &[7.0, 7.0, 50.0, 50.0]);
    }

    #[test]
    fn trace_from_readings_groups_zones() {
        let readings = vec![
            SensorReading::new(0, "bedroom", SensorKind::Temperature, 18.0),
            SensorReading::new(0, "kitchen", SensorKind::Temperature, 21.0),
            SensorReading::new(0, "bedroom", SensorKind::Light, 5.0),
        ];
        let trace = Trace::from_readings(PaperCalendar::starting_in(10), &readings, 2);
        assert_eq!(trace.zone_count(), 2);
        assert_eq!(trace.zone("bedroom").unwrap().temperature.at(0), 18.0);
        assert_eq!(trace.zone("kitchen").unwrap().temperature.at(0), 21.0);
        assert_eq!(trace.horizon_hours(), 2);
        assert!(trace.zone("garage").is_none());
    }

    #[test]
    fn out_of_horizon_readings_ignored() {
        let readings = [
            SensorReading::new(0, "z", SensorKind::Light, 1.0),
            SensorReading::new(100 * 3600, "z", SensorKind::Light, 99.0),
        ];
        let s = HourlySeries::from_readings(readings.iter(), 2, 0.0);
        assert_eq!(s.values(), &[1.0, 1.0]);
    }

    #[test]
    fn series_mean() {
        assert_eq!(HourlySeries::new(vec![1.0, 2.0, 3.0]).mean(), 2.0);
        assert_eq!(HourlySeries::new(vec![]).mean(), 0.0);
    }
}
