//! CSV persistence of raw sensor readings.
//!
//! Format (header + one row per reading):
//!
//! ```text
//! timestamp_s,zone,sensor,value
//! 0,flat,temperature,14.3
//! 0,flat,light,0.0
//! ```
//!
//! The writer buffers; the reader is line-oriented, validates every field
//! and reports the offending line number on failure.

use crate::reading::{SensorKind, SensorReading};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A CSV parse/IO failure.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content at a 1-based line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Malformed { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes readings as CSV to any writer.
pub fn write_csv<W: Write>(writer: W, readings: &[SensorReading]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "timestamp_s,zone,sensor,value")?;
    for r in readings {
        writeln!(
            w,
            "{},{},{},{}",
            r.timestamp_s,
            r.zone,
            r.sensor.token(),
            r.value
        )?;
    }
    w.flush()
}

/// Writes readings to a file.
pub fn write_csv_file(path: impl AsRef<Path>, readings: &[SensorReading]) -> io::Result<()> {
    write_csv(std::fs::File::create(path)?, readings)
}

/// Reads readings from any reader.
pub fn read_csv<R: Read>(reader: R) -> Result<Vec<SensorReading>, CsvError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (lineno == 1 && trimmed.starts_with("timestamp_s")) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 {
            return Err(CsvError::Malformed {
                line: lineno,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let timestamp_s: u64 = fields[0].parse().map_err(|_| CsvError::Malformed {
            line: lineno,
            message: format!("invalid timestamp `{}`", fields[0]),
        })?;
        let sensor = SensorKind::parse(fields[2]).ok_or_else(|| CsvError::Malformed {
            line: lineno,
            message: format!("unknown sensor `{}`", fields[2]),
        })?;
        let value: f64 = fields[3].parse().map_err(|_| CsvError::Malformed {
            line: lineno,
            message: format!("invalid value `{}`", fields[3]),
        })?;
        if !value.is_finite() {
            return Err(CsvError::Malformed {
                line: lineno,
                message: format!("non-finite value `{}`", fields[3]),
            });
        }
        out.push(SensorReading::new(timestamp_s, fields[1], sensor, value));
    }
    Ok(out)
}

/// Reads readings from a file.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Vec<SensorReading>, CsvError> {
    read_csv(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SensorReading> {
        vec![
            SensorReading::new(0, "flat", SensorKind::Temperature, 14.25),
            SensorReading::new(60, "flat", SensorKind::Light, 0.0),
            SensorReading::new(120, "bedroom", SensorKind::Door, 1.0),
        ]
    }

    #[test]
    fn round_trip_in_memory() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample()).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn round_trip_file() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("trace.csv");
        write_csv_file(&path, &sample()).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn header_and_blank_lines_skipped() {
        let text = "timestamp_s,zone,sensor,value\n\n5,z,light,3.5\n";
        let rows = read_csv(text.as_bytes()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].timestamp_s, 5);
    }

    #[test]
    fn malformed_rows_report_line() {
        let text = "1,z,light,3.5\nnot,a,row\n";
        match read_csv(text.as_bytes()).unwrap_err() {
            CsvError::Malformed { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("4 fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_sensor_and_bad_number_rejected() {
        assert!(matches!(
            read_csv("1,z,humidity,1.0\n".as_bytes()).unwrap_err(),
            CsvError::Malformed { .. }
        ));
        assert!(matches!(
            read_csv("1,z,light,abc\n".as_bytes()).unwrap_err(),
            CsvError::Malformed { .. }
        ));
        assert!(matches!(
            read_csv("1,z,light,NaN\n".as_bytes()).unwrap_err(),
            CsvError::Malformed { .. }
        ));
    }
}
