//! The climate-driven trace synthesizer.
//!
//! Replaces the CASAS apartment traces with a calibrated stochastic model
//! (DESIGN.md §1). Each zone's series are produced from:
//!
//! * a **seasonal outdoor temperature** (per-month means for a
//!   Mediterranean climate, matching the Cyprus deployment of the paper's
//!   prototype),
//! * a **diurnal swing** (coldest pre-dawn, warmest mid-afternoon),
//! * **AR(1) weather noise** (persistent day-to-day anomalies),
//! * **thermal moderation** mapping outdoor to *indoor unactuated*
//!   temperature (buildings are milder than the street),
//! * a **daylight curve** with month-dependent day length and per-day cloud
//!   attenuation, and
//! * sparse **door-opening events** during waking hours.
//!
//! Everything is deterministic under `(seed, zone)`.

use crate::reading::{SensorKind, SensorReading};
use crate::series::{HourlySeries, Trace, ZoneTrace};
use imcf_core::calendar::PaperCalendar;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The climate parameters driving trace synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClimateModel {
    /// Mean outdoor temperature per month (January first), °C.
    pub monthly_mean_c: [f64; 12],
    /// Half-amplitude of the diurnal outdoor swing, °C.
    pub diurnal_amp_c: f64,
    /// AR(1) persistence of the daily anomaly, in [0, 1).
    pub anomaly_persistence: f64,
    /// Standard deviation of the daily anomaly innovations, °C.
    pub anomaly_std_c: f64,
    /// Mixing factor: indoor = mix·outdoor + (1 − mix)·indoor_base.
    pub indoor_mix: f64,
    /// The building's thermal anchor, °C.
    pub indoor_base_c: f64,
    /// Peak indoor daylight level on a clear day, 0–100.
    pub peak_daylight: f64,
    /// Mean day length per month, hours (January first).
    pub day_length_h: [f64; 12],
    /// Expected door openings per day.
    pub door_openings_per_day: f64,
}

impl ClimateModel {
    /// A Mediterranean climate (Cyprus-like), the calibration used by the
    /// benchmark datasets.
    pub fn mediterranean() -> Self {
        ClimateModel {
            monthly_mean_c: [
                10.0, 10.5, 13.0, 17.0, 21.5, 26.0, 29.0, 29.0, 26.0, 21.5, 16.0, 12.0,
            ],
            diurnal_amp_c: 4.5,
            anomaly_persistence: 0.7,
            anomaly_std_c: 1.6,
            indoor_mix: 0.72,
            indoor_base_c: 16.0,
            peak_daylight: 75.0,
            day_length_h: [
                9.8, 10.8, 12.0, 13.2, 14.2, 14.6, 14.4, 13.5, 12.4, 11.2, 10.2, 9.5,
            ],
            door_openings_per_day: 6.0,
        }
    }

    /// A colder continental climate (for sensitivity experiments).
    pub fn continental() -> Self {
        ClimateModel {
            monthly_mean_c: [
                -2.0, 0.0, 5.0, 11.0, 16.0, 20.0, 23.0, 22.0, 17.0, 11.0, 4.0, -1.0,
            ],
            ..Self::mediterranean()
        }
    }

    /// Outdoor temperature at `(month, hour_of_day)` given the day's
    /// anomaly.
    fn outdoor_c(&self, month: u32, hour_of_day: u32, anomaly: f64) -> f64 {
        let mean = self.monthly_mean_c[(month as usize - 1) % 12];
        // Coldest around 05:00, warmest around 15:00.
        let phase = (hour_of_day as f64 - 15.0) / 24.0 * std::f64::consts::TAU;
        mean + self.diurnal_amp_c * phase.cos() + anomaly
    }

    /// Indoor unactuated temperature from outdoor.
    fn indoor_c(&self, outdoor: f64) -> f64 {
        self.indoor_mix * outdoor + (1.0 - self.indoor_mix) * self.indoor_base_c
    }

    /// Indoor daylight level at `(month, hour_of_day)` under a cloud factor
    /// in [0, 1].
    fn daylight(&self, month: u32, hour_of_day: u32, cloud: f64) -> f64 {
        let day_len = self.day_length_h[(month as usize - 1) % 12];
        let sunrise = 12.5 - day_len / 2.0;
        let sunset = 12.5 + day_len / 2.0;
        let h = hour_of_day as f64 + 0.5;
        if h < sunrise || h > sunset {
            return 0.0;
        }
        let x = (h - sunrise) / day_len * std::f64::consts::PI;
        (self.peak_daylight * x.sin() * cloud).clamp(0.0, 100.0)
    }
}

/// Deterministic trace synthesizer.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    /// Climate parameters.
    pub climate: ClimateModel,
    /// Calendar anchoring hour 0.
    pub calendar: PaperCalendar,
    /// Horizon length in hours.
    pub horizon_hours: u64,
    /// Master seed; zone seeds derive from it.
    pub seed: u64,
}

impl TraceGenerator {
    /// A generator over the paper's 39-month horizon (October 2013 →
    /// December 2016) under the Mediterranean calibration.
    pub fn casas_like(seed: u64) -> Self {
        TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::starting_in(10),
            horizon_hours: 39 * imcf_core::calendar::HOURS_PER_MONTH,
            seed,
        }
    }

    fn zone_rng(&self, zone: &str) -> ChaCha8Rng {
        // Mix the zone name into the master seed deterministically.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in zone.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        ChaCha8Rng::seed_from_u64(h)
    }

    /// Generates the hourly series for one zone.
    pub fn generate_zone(&self, zone: &str) -> ZoneTrace {
        let mut rng = self.zone_rng(zone);
        let n = self.horizon_hours as usize;
        let mut temperature = Vec::with_capacity(n);
        let mut light = Vec::with_capacity(n);
        let mut door = Vec::with_capacity(n);

        let mut anomaly = 0.0f64;
        let mut cloud = 0.8f64;
        // Small fixed per-zone offsets make replicated zones distinct.
        let zone_temp_offset: f64 = rng.gen_range(-0.8..0.8);
        let zone_light_factor: f64 = rng.gen_range(0.85..1.0);

        for h in 0..self.horizon_hours {
            let dt = self.calendar.decompose(h);
            if dt.hour == 0 {
                // New day: evolve the weather anomaly and redraw clouds.
                let innovation: f64 = rng.gen_range(-1.0..1.0) * self.climate.anomaly_std_c * 1.7;
                anomaly = self.climate.anomaly_persistence * anomaly + innovation;
                cloud = rng.gen_range(0.35..1.0f64);
            }
            let outdoor = self.climate.outdoor_c(dt.month, dt.hour, anomaly);
            let indoor = self.climate.indoor_c(outdoor) + zone_temp_offset;
            temperature.push(indoor + rng.gen_range(-0.2..0.2));
            light.push(self.climate.daylight(dt.month, dt.hour, cloud) * zone_light_factor);
            // Door openings cluster in waking hours (07:00–23:00).
            let open_frac = if (7..23).contains(&dt.hour) {
                let p = self.climate.door_openings_per_day / 16.0;
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    rng.gen_range(0.02..0.15)
                } else {
                    0.0
                }
            } else {
                0.0
            };
            door.push(open_frac);
        }

        ZoneTrace {
            zone: zone.to_string(),
            temperature: HourlySeries::new(temperature),
            light: HourlySeries::new(light),
            door_open: HourlySeries::new(door),
        }
    }

    /// Generates a multi-zone trace.
    pub fn generate(&self, zones: &[&str]) -> Trace {
        Trace::new(
            self.calendar,
            zones.iter().map(|z| self.generate_zone(z)).collect(),
        )
    }

    /// Materializes raw per-interval readings for one zone (the CSV-level
    /// view of the dataset). `interval_s` controls the cadence; the paper's
    /// traces are second-scale, tests use coarser intervals.
    pub fn raw_readings(&self, zone: &str, interval_s: u64) -> Vec<SensorReading> {
        assert!(interval_s > 0, "interval must be positive");
        let series = self.generate_zone(zone);
        let mut rng = self.zone_rng(&format!("{zone}/raw"));
        let mut out = Vec::new();
        let horizon_s = self.horizon_hours * 3600;
        let mut t = 0u64;
        while t < horizon_s {
            let h = (t / 3600).min(self.horizon_hours - 1);
            out.push(SensorReading::new(
                t,
                zone,
                SensorKind::Temperature,
                series.temperature.at(h) + rng.gen_range(-0.1..0.1),
            ));
            out.push(SensorReading::new(
                t,
                zone,
                SensorKind::Light,
                (series.light.at(h) + rng.gen_range(-1.0..1.0)).clamp(0.0, 100.0),
            ));
            if series.door_open.at(h) > 0.0 && rng.gen_bool(0.2) {
                out.push(SensorReading::new(t, zone, SensorKind::Door, 1.0));
            }
            t += interval_s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imcf_core::calendar::HOURS_PER_DAY;

    fn small_generator() -> TraceGenerator {
        TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: imcf_core::calendar::HOURS_PER_YEAR,
            seed: 1,
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = small_generator();
        let a = g.generate_zone("flat");
        let b = g.generate_zone("flat");
        assert_eq!(a, b);
        let c = TraceGenerator {
            seed: 2,
            ..small_generator()
        }
        .generate_zone("flat");
        assert_ne!(a, c);
    }

    #[test]
    fn zones_are_distinct_but_correlated_in_structure() {
        let g = small_generator();
        let a = g.generate_zone("bedroom");
        let b = g.generate_zone("kitchen");
        assert_ne!(a.temperature, b.temperature);
        // Same seasonal structure: January colder than July in both.
        for z in [&a, &b] {
            let jan = z.temperature.values()[..744].iter().sum::<f64>() / 744.0;
            let jul_start = 6 * 744;
            let jul = z.temperature.values()[jul_start..jul_start + 744]
                .iter()
                .sum::<f64>()
                / 744.0;
            assert!(
                jul > jan + 5.0,
                "summer should be much warmer ({jan:.1} vs {jul:.1})"
            );
        }
    }

    #[test]
    fn winter_nights_are_cold_and_dark() {
        let g = small_generator();
        let z = g.generate_zone("flat");
        // 03:00 on January 2nd.
        let h = 24 + 3;
        assert!(z.temperature.at(h) < 16.0, "t = {}", z.temperature.at(h));
        assert_eq!(z.light.at(h), 0.0);
    }

    #[test]
    fn summer_midday_is_warm_and_bright() {
        let g = small_generator();
        let z = g.generate_zone("flat");
        // 13:00 on July 10th.
        let h = (6 * 31 + 9) * HOURS_PER_DAY + 13;
        assert!(z.temperature.at(h) > 21.0, "t = {}", z.temperature.at(h));
        assert!(z.light.at(h) > 15.0, "light = {}", z.light.at(h));
    }

    #[test]
    fn daylight_respects_day_length() {
        let c = ClimateModel::mediterranean();
        // Midnight dark in any month and cloud level.
        for month in 1..=12 {
            assert_eq!(c.daylight(month, 0, 1.0), 0.0);
        }
        // Noon bright on a clear June day.
        assert!(c.daylight(6, 12, 1.0) > 60.0);
        // Clouds attenuate.
        assert!(c.daylight(6, 12, 0.4) < c.daylight(6, 12, 1.0));
    }

    #[test]
    fn door_fractions_bounded_and_nocturnal_doors_closed() {
        let g = small_generator();
        let z = g.generate_zone("flat");
        for (h, v) in z.door_open.values().iter().enumerate() {
            assert!((0.0..=1.0).contains(v));
            let hour_of_day = h % 24;
            if !(7..23).contains(&hour_of_day) {
                assert_eq!(*v, 0.0, "door open at hour {hour_of_day}");
            }
        }
    }

    #[test]
    fn raw_readings_cover_horizon() {
        let g = TraceGenerator {
            horizon_hours: 24,
            ..small_generator()
        };
        let rows = g.raw_readings("flat", 600);
        // 24 h × 6 samples/h × 2 sensors (+ occasional door rows).
        assert!(rows.len() >= 24 * 6 * 2);
        assert!(rows.iter().all(|r| r.timestamp_s < 24 * 3600));
        assert!(rows.iter().any(|r| r.sensor == SensorKind::Temperature));
        assert!(rows.iter().any(|r| r.sensor == SensorKind::Light));
    }

    #[test]
    fn casas_like_span() {
        let g = TraceGenerator::casas_like(0);
        assert_eq!(g.horizon_hours, 39 * 744);
        assert_eq!(g.calendar.month_of(0), 10); // starts in October
    }

    #[test]
    fn generate_multi_zone() {
        let g = small_generator();
        let t = g.generate(&["a", "b", "c"]);
        assert_eq!(t.zone_count(), 3);
        assert_eq!(t.horizon_hours(), g.horizon_hours);
    }
}
