//! # imcf-traces — sensor trace synthesis and handling
//!
//! The paper's evaluation is trace-driven: ~5.67 M temperature/light/door
//! readings recorded in a real apartment (CASAS, WSU) between October 2013
//! and December 2016, replicated ×4 for the *house* dataset and onto 50
//! apartments for the *dorms* dataset. The real traces are not
//! redistributable, so this crate provides the calibrated synthetic
//! equivalent (see DESIGN.md §1):
//!
//! * [`reading`] — raw timestamped sensor readings (the CSV row model);
//! * [`series`] — hourly-resampled per-zone series the planner consumes;
//! * [`generator`] — the climate-driven synthesizer (seasonal + diurnal +
//!   AR(1) noise), deterministic under a seed;
//! * [`csvio`] — CSV persistence of raw readings;
//! * [`replicate`] — the paper's dataset-scaling transforms (×4 house,
//!   50-apartment dorms);
//! * [`outage`] — seeded sensor-outage injection for robustness testing;
//! * [`stats`] — summary statistics over traces;
//! * [`ecp`] — deriving an Energy Consumption Profile from a trace.

pub mod csvio;
pub mod ecp;
pub mod generator;
pub mod outage;
pub mod reading;
pub mod replicate;
pub mod series;
pub mod stats;

pub use generator::{ClimateModel, TraceGenerator};
pub use reading::{SensorKind, SensorReading};
pub use series::{HourlySeries, Trace, ZoneTrace};
