//! Sensor-outage injection (failure testing).
//!
//! Real deployments lose sensors: batteries die, Wi-Fi drops, a reading
//! goes stale for hours. The paper's controller keeps planning through such
//! gaps using the last value it saw. This module injects that failure mode
//! into hourly traces — deterministic, seeded outages during which a series
//! *freezes* at its last pre-outage value — so robustness tests can measure
//! how stale ambients degrade the planner.

use crate::series::{HourlySeries, Trace, ZoneTrace};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One sensor outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// First affected hour.
    pub start: u64,
    /// Length in hours.
    pub hours: u64,
}

impl Outage {
    /// Whether an hour falls inside the outage.
    pub fn covers(&self, hour: u64) -> bool {
        hour >= self.start && hour < self.start + self.hours
    }
}

/// A deterministic outage schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutagePlan {
    outages: Vec<Outage>,
}

impl OutagePlan {
    /// Creates a plan from explicit windows (overlaps are fine).
    pub fn from_windows(outages: Vec<Outage>) -> Self {
        OutagePlan { outages }
    }

    /// Samples a plan: expected `rate_per_week` outages, each lasting
    /// 1..=`max_hours` hours, over `horizon_hours`. Deterministic per seed.
    pub fn sample(horizon_hours: u64, rate_per_week: f64, max_hours: u64, seed: u64) -> Self {
        assert!(max_hours >= 1, "outages last at least one hour");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p_per_hour = (rate_per_week / (7.0 * 24.0)).clamp(0.0, 1.0);
        let mut outages = Vec::new();
        let mut h = 0;
        while h < horizon_hours {
            if rng.gen_bool(p_per_hour) {
                let len = rng.gen_range(1..=max_hours).min(horizon_hours - h);
                outages.push(Outage {
                    start: h,
                    hours: len,
                });
                h += len;
            } else {
                h += 1;
            }
        }
        OutagePlan { outages }
    }

    /// The outage windows.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Total hours under outage (overlaps counted once).
    pub fn total_hours(&self, horizon: u64) -> u64 {
        (0..horizon).filter(|h| self.covers(*h)).count() as u64
    }

    /// Whether any outage covers the hour.
    pub fn covers(&self, hour: u64) -> bool {
        self.outages.iter().any(|o| o.covers(hour))
    }

    /// Applies the plan to a series: values inside outages freeze at the
    /// last healthy reading (or `fallback` when the outage starts at hour
    /// 0).
    pub fn apply_to_series(&self, series: &HourlySeries, fallback: f64) -> HourlySeries {
        let mut out = Vec::with_capacity(series.len());
        let mut last_good = fallback;
        for (h, v) in series.values().iter().enumerate() {
            if self.covers(h as u64) {
                out.push(last_good);
            } else {
                last_good = *v;
                out.push(*v);
            }
        }
        HourlySeries::new(out)
    }

    /// Applies the plan to every series of a zone.
    pub fn apply_to_zone(&self, zone: &ZoneTrace) -> ZoneTrace {
        ZoneTrace {
            zone: zone.zone.clone(),
            temperature: self.apply_to_series(&zone.temperature, 18.0),
            light: self.apply_to_series(&zone.light, 0.0),
            door_open: self.apply_to_series(&zone.door_open, 0.0),
        }
    }

    /// Applies the plan to every zone of a trace.
    pub fn apply_to_trace(&self, trace: &Trace) -> Trace {
        Trace::new(
            trace.calendar,
            trace.zones.iter().map(|z| self.apply_to_zone(z)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ClimateModel, TraceGenerator};
    use imcf_core::calendar::PaperCalendar;

    fn series() -> HourlySeries {
        HourlySeries::new((0..10).map(|h| h as f64).collect())
    }

    #[test]
    fn freeze_holds_last_good_value() {
        let plan = OutagePlan::from_windows(vec![Outage { start: 3, hours: 4 }]);
        let out = plan.apply_to_series(&series(), -1.0);
        assert_eq!(
            out.values(),
            &[0.0, 1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 7.0, 8.0, 9.0]
        );
    }

    #[test]
    fn outage_at_start_uses_fallback() {
        let plan = OutagePlan::from_windows(vec![Outage { start: 0, hours: 2 }]);
        let out = plan.apply_to_series(&series(), -1.0);
        assert_eq!(&out.values()[..3], &[-1.0, -1.0, 2.0]);
    }

    #[test]
    fn coverage_accounting() {
        let plan = OutagePlan::from_windows(vec![
            Outage { start: 2, hours: 3 },
            Outage { start: 4, hours: 2 }, // overlaps the first
        ]);
        assert_eq!(plan.total_hours(10), 4); // hours 2,3,4,5
        assert!(plan.covers(4));
        assert!(!plan.covers(6));
    }

    #[test]
    fn sampled_plans_are_deterministic_and_rate_plausible() {
        let horizon = 8 * 7 * 24; // 8 weeks
        let a = OutagePlan::sample(horizon, 2.0, 6, 7);
        let b = OutagePlan::sample(horizon, 2.0, 6, 7);
        assert_eq!(a, b);
        // Expected ≈16 outages over 8 weeks; allow a wide band.
        let n = a.outages().len();
        assert!((4..=40).contains(&n), "sampled {n} outages");
        for o in a.outages() {
            assert!(o.hours >= 1 && o.hours <= 6);
            assert!(o.start + o.hours <= horizon);
        }
    }

    #[test]
    fn zero_rate_means_no_outages() {
        let plan = OutagePlan::sample(1000, 0.0, 4, 1);
        assert!(plan.outages().is_empty());
    }

    #[test]
    fn zone_and_trace_application() {
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: 48,
            seed: 3,
        };
        let trace = g.generate(&["a", "b"]);
        let plan = OutagePlan::from_windows(vec![Outage {
            start: 10,
            hours: 5,
        }]);
        let broken = plan.apply_to_trace(&trace);
        assert_eq!(broken.zone_count(), 2);
        let a = broken.zone("a").unwrap();
        let orig = trace.zone("a").unwrap();
        // Frozen inside the outage…
        for h in 10..15 {
            assert_eq!(a.temperature.at(h), orig.temperature.at(9));
        }
        // …healthy outside it.
        assert_eq!(a.temperature.at(20), orig.temperature.at(20));
    }
}
