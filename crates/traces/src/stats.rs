//! Summary statistics over traces.
//!
//! Mirrors the dataset tables of the paper's §III-A (reading counts, spans,
//! per-sensor ranges) so experiment output can print a dataset inventory.

use crate::reading::{SensorKind, SensorReading};
use crate::series::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-sensor summary over raw readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorStats {
    /// Reading count.
    pub count: u64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
}

/// Summary of a raw reading set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total reading count.
    pub readings: u64,
    /// Distinct zones.
    pub zones: usize,
    /// Span covered, seconds.
    pub span_s: u64,
    /// Per-sensor summaries.
    pub per_sensor: BTreeMap<String, SensorStats>,
}

/// Computes summary statistics over raw readings.
pub fn raw_stats(readings: &[SensorReading]) -> TraceStats {
    let mut zones = std::collections::BTreeSet::new();
    let mut span = 0u64;
    let mut acc: BTreeMap<SensorKind, (u64, f64, f64, f64)> = BTreeMap::new();
    for r in readings {
        zones.insert(r.zone.as_str());
        span = span.max(r.timestamp_s);
        let e = acc
            .entry(r.sensor)
            .or_insert((0, f64::INFINITY, f64::NEG_INFINITY, 0.0));
        e.0 += 1;
        e.1 = e.1.min(r.value);
        e.2 = e.2.max(r.value);
        e.3 += r.value;
    }
    TraceStats {
        readings: readings.len() as u64,
        zones: zones.len(),
        span_s: span,
        per_sensor: acc
            .into_iter()
            .map(|(k, (count, min, max, sum))| {
                (
                    k.token().to_string(),
                    SensorStats {
                        count,
                        min,
                        max,
                        mean: sum / count as f64,
                    },
                )
            })
            .collect(),
    }
}

/// A compact description of an hourly trace (the dataset inventory line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlyTraceStats {
    /// Zones.
    pub zones: usize,
    /// Horizon in hours.
    pub horizon_hours: u64,
    /// Mean indoor temperature over all zones.
    pub mean_temperature_c: f64,
    /// Mean light level over all zones.
    pub mean_light: f64,
}

/// Computes summary statistics over an hourly trace.
pub fn hourly_stats(trace: &Trace) -> HourlyTraceStats {
    let zones = trace.zone_count();
    let horizon = trace.horizon_hours();
    let mut t_sum = 0.0;
    let mut l_sum = 0.0;
    let mut n = 0u64;
    for z in &trace.zones {
        for h in 0..horizon {
            t_sum += z.temperature.at(h);
            l_sum += z.light.at(h);
            n += 1;
        }
    }
    HourlyTraceStats {
        zones,
        horizon_hours: horizon,
        mean_temperature_c: if n > 0 { t_sum / n as f64 } else { 0.0 },
        mean_light: if n > 0 { l_sum / n as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use imcf_core::calendar::PaperCalendar;

    #[test]
    fn raw_stats_summarize() {
        let readings = vec![
            SensorReading::new(0, "a", SensorKind::Temperature, 10.0),
            SensorReading::new(100, "a", SensorKind::Temperature, 20.0),
            SensorReading::new(50, "b", SensorKind::Light, 40.0),
        ];
        let s = raw_stats(&readings);
        assert_eq!(s.readings, 3);
        assert_eq!(s.zones, 2);
        assert_eq!(s.span_s, 100);
        let t = &s.per_sensor["temperature"];
        assert_eq!((t.count, t.min, t.max, t.mean), (2, 10.0, 20.0, 15.0));
        assert_eq!(s.per_sensor["light"].count, 1);
    }

    #[test]
    fn hourly_stats_over_generated_trace() {
        let g = TraceGenerator {
            climate: crate::generator::ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: 24 * 31,
            seed: 4,
        };
        let t = g.generate(&["a", "b"]);
        let s = hourly_stats(&t);
        assert_eq!(s.zones, 2);
        assert_eq!(s.horizon_hours, 24 * 31);
        // January: cool indoors, mostly dark.
        assert!(s.mean_temperature_c > 5.0 && s.mean_temperature_c < 20.0);
        assert!(s.mean_light < 40.0);
    }

    #[test]
    fn empty_inputs() {
        let s = raw_stats(&[]);
        assert_eq!(s.readings, 0);
        assert_eq!(s.zones, 0);
        let t = Trace::new(PaperCalendar::january_start(), vec![]);
        let hs = hourly_stats(&t);
        assert_eq!(hs.zones, 0);
        assert_eq!(hs.mean_temperature_c, 0.0);
    }
}
