//! Deriving an Energy Consumption Profile from a trace.
//!
//! The paper's ECP (Table I) is the historical monthly consumption of the
//! residence. Given a trace and a per-hour consumption estimator (typically
//! the MRT schedule priced through the device energy models), this module
//! aggregates consumption into the 12-month January-first profile the
//! Amortization Plan consumes, averaging across the years the trace spans.

use crate::series::{Trace, ZoneTrace};
use imcf_core::ecp::Ecp;

/// Derives a 12-month ECP from a trace.
///
/// `hourly_kwh(zone, hour_index)` estimates the zone's consumption during
/// one hour (e.g. the cost of executing the MRT rules active then). Months
/// observed multiple times (multi-year traces) are averaged; months never
/// observed get the overall monthly mean so the profile stays total-safe.
pub fn derive_ecp<F>(trace: &Trace, hourly_kwh: F) -> Ecp
where
    F: Fn(&ZoneTrace, u64) -> f64,
{
    let mut sums = [0.0f64; 12];
    let mut hours_seen = [0u64; 12];
    let horizon = trace.horizon_hours();
    for h in 0..horizon {
        let month = trace.calendar.month_of(h) as usize - 1;
        hours_seen[month] += 1;
        for z in &trace.zones {
            sums[month] += hourly_kwh(z, h);
        }
    }
    // Convert to a per-month figure: observed total divided by the number of
    // times the month was observed (hours / 744).
    let mut monthly = [0.0f64; 12];
    let mut observed_total = 0.0;
    let mut observed_count = 0u32;
    for m in 0..12 {
        if hours_seen[m] > 0 {
            let occurrences = hours_seen[m] as f64 / imcf_core::calendar::HOURS_PER_MONTH as f64;
            monthly[m] = sums[m] / occurrences;
            observed_total += monthly[m];
            observed_count += 1;
        }
    }
    // Fill unobserved months with the mean of observed ones.
    let fill = if observed_count > 0 {
        observed_total / observed_count as f64
    } else {
        0.0
    };
    for m in 0..12 {
        if hours_seen[m] == 0 {
            monthly[m] = fill;
        }
    }
    Ecp::new(monthly.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ClimateModel, TraceGenerator};
    use crate::series::{HourlySeries, ZoneTrace};
    use imcf_core::calendar::{PaperCalendar, HOURS_PER_MONTH, HOURS_PER_YEAR};

    #[test]
    fn constant_cost_yields_uniform_profile() {
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: HOURS_PER_YEAR,
            seed: 0,
        };
        let trace = g.generate(&["flat"]);
        let ecp = derive_ecp(&trace, |_, _| 0.5);
        for m in 1..=12 {
            assert!((ecp.month_kwh(m) - 0.5 * HOURS_PER_MONTH as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn gap_cost_is_winter_heavy() {
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: HOURS_PER_YEAR,
            seed: 1,
        };
        let trace = g.generate(&["flat"]);
        // Heating toward 23°C: cost proportional to the deficiency.
        let ecp = derive_ecp(&trace, |z, h| (23.0 - z.temperature.at(h)).max(0.0) * 0.05);
        assert!(
            ecp.month_kwh(1) > 2.0 * ecp.month_kwh(7),
            "jan {} vs jul {}",
            ecp.month_kwh(1),
            ecp.month_kwh(7)
        );
    }

    #[test]
    fn multi_year_months_average() {
        // Two years of constant cost still yields one month's worth.
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: 2 * HOURS_PER_YEAR,
            seed: 0,
        };
        let trace = g.generate(&["flat"]);
        let ecp = derive_ecp(&trace, |_, _| 1.0);
        assert!((ecp.month_kwh(3) - HOURS_PER_MONTH as f64).abs() < 1e-6);
    }

    #[test]
    fn unobserved_months_get_the_mean() {
        // A trace covering only January.
        let zone = ZoneTrace {
            zone: "flat".into(),
            temperature: HourlySeries::new(vec![10.0; HOURS_PER_MONTH as usize]),
            light: HourlySeries::new(vec![0.0; HOURS_PER_MONTH as usize]),
            door_open: HourlySeries::new(vec![0.0; HOURS_PER_MONTH as usize]),
        };
        let trace = Trace::new(PaperCalendar::january_start(), vec![zone]);
        let ecp = derive_ecp(&trace, |_, _| 1.0);
        let jan = ecp.month_kwh(1);
        assert!((jan - HOURS_PER_MONTH as f64).abs() < 1e-6);
        // Every other month inherits January's figure (the mean of one).
        for m in 2..=12 {
            assert!((ecp.month_kwh(m) - jan).abs() < 1e-6);
        }
    }

    #[test]
    fn multi_zone_costs_add() {
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: HOURS_PER_MONTH,
            seed: 0,
        };
        let one = derive_ecp(&g.generate(&["a"]), |_, _| 1.0);
        let two = derive_ecp(&g.generate(&["a", "b"]), |_, _| 1.0);
        assert!((two.month_kwh(1) - 2.0 * one.month_kwh(1)).abs() < 1e-6);
    }
}
