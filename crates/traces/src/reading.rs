//! Raw sensor readings: the row model of the CASAS-style datasets.
//!
//! A reading is a `(timestamp, zone, sensor, value)` tuple. Timestamps are
//! seconds since the start of the trace horizon (the paper's traces start
//! October 2013; our paper-calendar hour 0 corresponds to that origin).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The sensor families present in the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensorKind {
    /// Indoor temperature, °C.
    Temperature,
    /// Indoor illuminance, 0–100.
    Light,
    /// Door/window contact: 1 open, 0 closed.
    Door,
}

impl SensorKind {
    /// Stable lowercase token used in CSV files.
    pub fn token(&self) -> &'static str {
        match self {
            SensorKind::Temperature => "temperature",
            SensorKind::Light => "light",
            SensorKind::Door => "door",
        }
    }

    /// Parses the CSV token.
    pub fn parse(token: &str) -> Option<SensorKind> {
        match token {
            "temperature" => Some(SensorKind::Temperature),
            "light" => Some(SensorKind::Light),
            "door" => Some(SensorKind::Door),
            _ => None,
        }
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

/// One timestamped sensor reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Seconds since the trace origin.
    pub timestamp_s: u64,
    /// The zone (room/apartment) the sensor lives in.
    pub zone: String,
    /// Sensor family.
    pub sensor: SensorKind,
    /// The measured value.
    pub value: f64,
}

impl SensorReading {
    /// Creates a reading.
    pub fn new(timestamp_s: u64, zone: &str, sensor: SensorKind, value: f64) -> Self {
        SensorReading {
            timestamp_s,
            zone: zone.to_string(),
            sensor,
            value,
        }
    }

    /// The hour index this reading falls in.
    pub fn hour_index(&self) -> u64 {
        self.timestamp_s / 3600
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for kind in [SensorKind::Temperature, SensorKind::Light, SensorKind::Door] {
            assert_eq!(SensorKind::parse(kind.token()), Some(kind));
        }
        assert_eq!(SensorKind::parse("humidity"), None);
    }

    #[test]
    fn hour_indexing() {
        assert_eq!(
            SensorReading::new(0, "z", SensorKind::Light, 1.0).hour_index(),
            0
        );
        assert_eq!(
            SensorReading::new(3599, "z", SensorKind::Light, 1.0).hour_index(),
            0
        );
        assert_eq!(
            SensorReading::new(3600, "z", SensorKind::Light, 1.0).hour_index(),
            1
        );
    }
}
