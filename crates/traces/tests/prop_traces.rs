//! Property-based tests for trace handling: CSV round trips, resampling
//! bounds, replication invariants and generator determinism.

use imcf_core::calendar::PaperCalendar;
use imcf_traces::csvio::{read_csv, write_csv};
use imcf_traces::generator::{ClimateModel, TraceGenerator};
use imcf_traces::reading::{SensorKind, SensorReading};
use imcf_traces::replicate::{replicate, ReplicationSpec};
use imcf_traces::series::HourlySeries;
use proptest::prelude::*;

fn arb_reading() -> impl Strategy<Value = SensorReading> {
    (
        0u64..(100 * 3600),
        "[a-z]{1,8}",
        prop_oneof![
            Just(SensorKind::Temperature),
            Just(SensorKind::Light),
            Just(SensorKind::Door)
        ],
        -50.0f64..150.0,
    )
        .prop_map(|(t, z, s, v)| SensorReading::new(t, &z, s, (v * 100.0).round() / 100.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV round trip for arbitrary readings.
    #[test]
    fn csv_roundtrip(readings in proptest::collection::vec(arb_reading(), 0..50)) {
        let mut buf = Vec::new();
        write_csv(&mut buf, &readings).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        prop_assert_eq!(back, readings);
    }

    /// Hourly resampling stays within the min/max of its inputs per hour.
    #[test]
    fn resampling_bounded_by_inputs(values in proptest::collection::vec(0.0f64..100.0, 1..60)) {
        let readings: Vec<SensorReading> = values
            .iter()
            .enumerate()
            .map(|(i, v)| SensorReading::new(i as u64 * 60, "z", SensorKind::Light, *v))
            .collect();
        let series = HourlySeries::from_readings(readings.iter(), 1, 0.0);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(series.at(0) >= min - 1e-9 && series.at(0) <= max + 1e-9);
    }

    /// Replication produces the requested zone count and never pushes light
    /// outside 0–100, for any seed and replica count.
    #[test]
    fn replication_invariants(seed in 0u64..500, replicas in 1usize..8) {
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: 48,
            seed,
        };
        let source = g.generate(&["src"]);
        let spec = ReplicationSpec { replicas, ..ReplicationSpec::house() };
        let out = replicate(&source, spec, seed);
        prop_assert_eq!(out.zone_count(), replicas);
        for z in &out.zones {
            prop_assert_eq!(z.horizon_hours(), 48);
            for h in 0..48 {
                let l = z.light.at(h);
                prop_assert!((0.0..=100.0).contains(&l));
            }
        }
    }

    /// The generator is a pure function of (seed, zone, horizon): equal
    /// inputs agree, and longer horizons extend shorter ones.
    #[test]
    fn generator_prefix_stability(seed in 0u64..200) {
        let make = |hours: u64| TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: hours,
            seed,
        };
        let short = make(24).generate_zone("z");
        let long = make(48).generate_zone("z");
        for h in 0..24 {
            prop_assert_eq!(short.temperature.at(h), long.temperature.at(h));
            prop_assert_eq!(short.light.at(h), long.light.at(h));
        }
    }

    /// Generated physical values stay in sane bands.
    #[test]
    fn generated_values_in_band(seed in 0u64..100) {
        let g = TraceGenerator {
            climate: ClimateModel::mediterranean(),
            calendar: PaperCalendar::january_start(),
            horizon_hours: 24 * 14,
            seed,
        };
        let z = g.generate_zone("band");
        for h in 0..z.horizon_hours() {
            let t = z.temperature.at(h);
            prop_assert!((-10.0..=45.0).contains(&t), "temperature {t} out of band");
            let l = z.light.at(h);
            prop_assert!((0.0..=100.0).contains(&l));
            let d = z.door_open.at(h);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
