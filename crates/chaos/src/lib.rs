//! # imcf-chaos — the deterministic fault-injection plane
//!
//! Sensor outages already have a seeded injector
//! (`imcf_traces::outage::OutagePlan`); this crate covers the other two
//! legs of the failure triangle — **actuation** and **storage** — plus the
//! resilience primitives that let the Local Controller survive them.
//!
//! * [`FaultPlan`] — a seeded, serde round-trippable schedule of injected
//!   faults: device-command faults (drop / delay / stuck actuator), store
//!   faults (WAL write/fsync errors, torn tail on reopen) and bus faults
//!   (stalled subscriber windows). Every decision is a pure function of
//!   `(seed, coordinates)`: a ChaCha8 stream is derived per query, so the
//!   answer does not depend on query order, thread interleaving or worker
//!   count — the same determinism contract as `imcf-pool`.
//! * [`RetryPolicy`] — bounded attempts with deterministic sim-time
//!   exponential backoff and seeded jitter (ticks, not wall clock).
//! * [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine, per device, quarantining flapping actuators.
//! * [`crashpoint`] — named kill-the-process sites with seeded selection,
//!   the substrate of the crash-recovery soak (`imcf chaos --crash`).
//!
//! Fault *decisions* live here; fault *wiring* lives at the injection
//! points (`DeviceRegistry::set_fault_injector`, `Wal::set_fault_hook`) so
//! that `imcf-devices` and `imcf-store` stay free of chaos types.
//!
//! Telemetry: injections are counted under `chaos.faults_injected` (by
//! `kind` label) and breaker open transitions under `breaker.open`, both
//! registered in the `imcf-telemetry` catalog.

mod breaker;
pub mod crashpoint;
mod plan;
mod retry;

pub use breaker::{BreakerBank, BreakerConfig, BreakerSnapshot, BreakerState, CircuitBreaker};
pub use crashpoint::Crashpoint;
pub use plan::{CommandFault, FaultPlan, StoreFault, StoreOp};
pub use retry::RetryPolicy;

/// Records one injected fault in the global telemetry registry.
///
/// Central so every injection site (registry hook, WAL hook, scenario
/// drivers) counts through the same cataloged metric.
pub fn record_injection(kind: &str) {
    imcf_telemetry::global()
        .counter_with("chaos.faults_injected", &[("kind", kind)])
        .inc();
}
