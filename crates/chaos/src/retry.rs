//! Bounded retry with deterministic sim-time backoff.
//!
//! Backoff is measured in scheduler *ticks*, never wall clock, so a retry
//! schedule is reproducible for a given `(policy, key)` pair. Jitter is
//! drawn from a ChaCha8 stream derived from the policy seed and the retry
//! key — the same per-coordinate derivation [`crate::FaultPlan`] uses —
//! which decorrelates retry storms across devices without sacrificing
//! determinism.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Bounded-attempt retry policy with exponential, jittered tick backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total delivery attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry, in ticks.
    pub base_backoff_ticks: u64,
    /// Ceiling on any single backoff, in ticks.
    pub max_backoff_ticks: u64,
    /// Fraction of the backoff drawn as additive jitter (0.0 = none,
    /// 0.5 = up to +50%).
    pub jitter: f64,
    /// Seed for the jitter streams.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// True when `attempt` (1-based, the attempt that just failed) has a
    /// retry budget left.
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Ticks to wait before the retry *after* failed attempt `attempt`
    /// (1-based). Pure in `(self, attempt, key)`; `key` is any stable
    /// identifier for the retried operation (the controller uses the
    /// thing UID).
    pub fn backoff_ticks(&self, attempt: u32, key: &str) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let base = self
            .base_backoff_ticks
            .max(1)
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ticks.max(1));
        if self.jitter <= 0.0 {
            return base;
        }
        let mut h: u64 = 0xCBF29CE484222325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001B3);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ h ^ (u64::from(attempt) << 48));
        let extra =
            (base as f64 * self.jitter.clamp(0.0, 1.0) * rng.gen_range(0.0..1.0)).round() as u64;
        (base + extra).min(self.max_backoff_ticks.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_are_bounded() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(1));
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));
        assert!(!RetryPolicy::none().should_retry(1));
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
            jitter: 0.5,
            seed: 42,
        };
        for attempt in 1..6 {
            let a = p.backoff_ticks(attempt, "imcf:hvac:kitchen");
            let b = p.backoff_ticks(attempt, "imcf:hvac:kitchen");
            assert_eq!(a, b, "attempt {attempt}");
            assert!((1..=8).contains(&a), "attempt {attempt} backoff {a}");
        }
        // Exponential shape without jitter.
        let flat = RetryPolicy { jitter: 0.0, ..p };
        assert_eq!(flat.backoff_ticks(1, "k"), 1);
        assert_eq!(flat.backoff_ticks(2, "k"), 2);
        assert_eq!(flat.backoff_ticks(3, "k"), 4);
        assert_eq!(flat.backoff_ticks(4, "k"), 8);
        assert_eq!(flat.backoff_ticks(5, "k"), 8, "capped at max");
    }

    #[test]
    fn jitter_decorrelates_keys() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 4,
            max_backoff_ticks: 64,
            jitter: 1.0,
            seed: 9,
        };
        let spread: std::collections::BTreeSet<u64> = (0..32)
            .map(|i| p.backoff_ticks(2, &format!("dev-{i}")))
            .collect();
        assert!(spread.len() > 1, "jitter must vary across keys: {spread:?}");
    }

    #[test]
    fn serde_round_trip() {
        let p = RetryPolicy::default();
        let json = serde_json::to_string(&p).unwrap();
        let q: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
