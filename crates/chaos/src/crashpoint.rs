//! Named crashpoints: seeded, kill-the-process fault injection.
//!
//! The [`FaultPlan`](crate::FaultPlan) injects *recoverable* faults inside
//! a live process; a crashpoint kills the process outright at a named site
//! in the controller/store/commit paths, simulating power loss at the most
//! inconvenient instruction. The crash-recovery harness runs the
//! controller in a child process, arms one crashpoint per cycle (via the
//! `IMCF_CRASHPOINT` environment variable), and asserts the recovery
//! invariants after restart.
//!
//! The *choice* of crashpoint is deterministic: [`pick`] seeds a ChaCha8
//! stream from `(seed, cycle)` under its own domain salt — the same
//! derivation idiom as the fault plan — so a crash soak at a given seed
//! kills at the same sites in the same order on every run.
//!
//! Instrumented code calls [`reached`] at each site; the call is a cheap
//! atomic load unless a crashpoint is armed. When the armed site's
//! occurrence counter hits the armed count, the process aborts (no
//! unwinding, no destructors — the closest safe approximation of
//! `SIGKILL` mid-write).

use crate::plan::splitmix64;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Domain salt for crashpoint selection (the fault-plan domains end at
/// `…0004`; crashpoints are the fifth family).
const DOMAIN_CRASH: u64 = 0x00C0_FFEE_0005;

/// Environment variable the child process reads to arm a crashpoint:
/// `<site>:<occurrence>` (1-based; the Nth time the site is reached, the
/// process aborts).
pub const CRASHPOINT_ENV: &str = "IMCF_CRASHPOINT";

/// The catalog of named crashpoint sites, in controller / store / commit
/// order. Adding a site here makes it eligible for seeded selection.
pub const CRASH_SITES: &[&str] = &[
    // Controller tick path.
    "controller.tick.pre_plan",
    "controller.tick.post_dispatch",
    // Command-journal path (between append and the durability point, and
    // right after it — the torn-tail and the just-acknowledged cases).
    "journal.pre_sync",
    "journal.post_sync",
    // Checkpoint path (around the group-commit durability point).
    "checkpoint.pre_sync",
    "checkpoint.post_sync",
];

/// One armed crashpoint: a site and the 1-based occurrence that fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crashpoint {
    /// The site name (one of [`CRASH_SITES`]).
    pub site: String,
    /// The occurrence of the site that aborts the process (1 = first).
    pub occurrence: u64,
}

impl Crashpoint {
    /// Renders the `IMCF_CRASHPOINT` environment value for this point.
    pub fn env_value(&self) -> String {
        format!("{}:{}", self.site, self.occurrence)
    }

    /// Parses an `IMCF_CRASHPOINT` value (`site:occurrence`).
    pub fn parse(value: &str) -> Option<Crashpoint> {
        let (site, occurrence) = value.rsplit_once(':')?;
        let occurrence: u64 = occurrence.parse().ok()?;
        (!site.is_empty() && occurrence > 0).then(|| Crashpoint {
            site: site.to_string(),
            occurrence,
        })
    }
}

/// Deterministically picks the crashpoint for `(seed, cycle)`: a site from
/// [`CRASH_SITES`] and an occurrence in `1..=max_occurrence`. Pure in its
/// inputs — the crash soak's kill schedule is reproducible per seed.
pub fn pick(seed: u64, cycle: u64, max_occurrence: u64) -> Crashpoint {
    let mixed = splitmix64(DOMAIN_CRASH ^ splitmix64(cycle));
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ mixed);
    let site = CRASH_SITES[rng.gen_range(0..CRASH_SITES.len() as u64) as usize];
    Crashpoint {
        site: site.to_string(),
        occurrence: rng.gen_range(1..=max_occurrence.max(1)),
    }
}

/// Armed state: site, target occurrence, occurrences seen so far.
static ARMED: Mutex<Option<(Crashpoint, u64)>> = Mutex::new(None);
/// Fast-path flag so un-armed processes pay one relaxed load per site.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Poison-tolerant lock (an abort mid-`reached` cannot poison anyone, but
/// a panicking test thread must not wedge the others).
fn armed() -> std::sync::MutexGuard<'static, Option<(Crashpoint, u64)>> {
    ARMED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `point`: the `point.occurrence`-th call to
/// [`reached`]`(point.site)` aborts the process.
pub fn arm(point: Crashpoint) {
    *armed() = Some((point, 0));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Arms the crashpoint named by the `IMCF_CRASHPOINT` environment
/// variable, if present and well-formed. Returns the armed point.
pub fn arm_from_env() -> Option<Crashpoint> {
    let value = std::env::var(CRASHPOINT_ENV).ok()?;
    let point = Crashpoint::parse(&value)?;
    arm(point.clone());
    Some(point)
}

/// Disarms any armed crashpoint.
pub fn disarm() {
    ACTIVE.store(false, Ordering::SeqCst);
    *armed() = None;
}

/// Would this call fire the armed crashpoint? Counts the occurrence as a
/// side effect. Split from [`reached`] so tests can exercise the counting
/// without dying.
fn check(site: &str) -> bool {
    let mut guard = armed();
    match guard.as_mut() {
        Some((point, seen)) if point.site == site => {
            *seen += 1;
            *seen >= point.occurrence
        }
        _ => false,
    }
}

/// Marks execution reaching the named site. Aborts the process when the
/// armed crashpoint's occurrence count is met; a no-op (one atomic load)
/// otherwise.
pub fn reached(site: &str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if check(site) {
        // Dying is the point: no unwinding, no flushes, no destructors.
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_is_deterministic_and_seed_sensitive() {
        let a: Vec<Crashpoint> = (0..32).map(|c| pick(7, c, 6)).collect();
        let b: Vec<Crashpoint> = (0..32).map(|c| pick(7, c, 6)).collect();
        let c: Vec<Crashpoint> = (0..32).map(|c| pick(8, c, 6)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct seeds must pick distinct schedules");
        for p in &a {
            assert!(CRASH_SITES.contains(&p.site.as_str()));
            assert!((1..=6).contains(&p.occurrence));
        }
        // Over enough cycles the whole catalog is exercised.
        let sites: std::collections::BTreeSet<String> =
            (0..256).map(|c| pick(7, c, 6).site).collect();
        assert_eq!(sites.len(), CRASH_SITES.len(), "all sites reachable");
    }

    #[test]
    fn env_value_round_trips() {
        let p = pick(3, 0, 4);
        let parsed = Crashpoint::parse(&p.env_value()).unwrap();
        assert_eq!(p, parsed);
        assert_eq!(Crashpoint::parse("no-colon"), None);
        assert_eq!(Crashpoint::parse("site:0"), None);
        assert_eq!(Crashpoint::parse(":3"), None);
        assert_eq!(Crashpoint::parse("site:x"), None);
    }

    #[test]
    fn counting_fires_on_the_armed_occurrence_only() {
        disarm();
        // Unarmed: nothing counts, nothing fires.
        assert!(!check("journal.pre_sync"));
        arm(Crashpoint {
            site: "journal.pre_sync".into(),
            occurrence: 3,
        });
        assert!(!check("checkpoint.pre_sync"), "other sites do not count");
        assert!(!check("journal.pre_sync"));
        assert!(!check("journal.pre_sync"));
        assert!(check("journal.pre_sync"), "third occurrence fires");
        disarm();
        assert!(!check("journal.pre_sync"));
        // reached() after disarm is the production fast path: must return.
        reached("journal.pre_sync");
    }
}
