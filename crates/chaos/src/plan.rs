//! The seeded fault schedule.
//!
//! A [`FaultPlan`] is configuration plus a seed; the concrete faults are
//! *derived*, never stored. Each query (`command_fault`, `store_fault`,
//! `torn_tail_bytes`, `bus_stalled`) seeds its own ChaCha8 stream from
//! `seed ⊕ splitmix64(domain ⊕ coordinates)`, so:
//!
//! * the same `(plan, coordinates)` always yields the same fault — across
//!   processes, worker counts and query orders;
//! * distinct coordinates draw from statistically independent streams;
//! * serializing and deserializing the plan preserves every future
//!   decision exactly (the struct is plain data).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A fault injected on one device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandFault {
    /// The command is silently lost in flight.
    Drop,
    /// The command is lost now but would succeed once the link recovers
    /// `ticks` ticks later (the retry path models the redelivery).
    Delay {
        /// Ticks until the link recovers.
        ticks: u64,
    },
    /// The actuator wedges: this and every further command to the device
    /// is ignored for `ticks` ticks.
    Stuck {
        /// Ticks the actuator stays wedged.
        ticks: u64,
    },
}

impl CommandFault {
    /// Stable kind name, used as the `kind` telemetry label.
    pub fn kind(&self) -> &'static str {
        match self {
            CommandFault::Drop => "cmd_drop",
            CommandFault::Delay { .. } => "cmd_delay",
            CommandFault::Stuck { .. } => "cmd_stuck",
        }
    }
}

/// Which WAL operation a store fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreOp {
    /// A record append.
    Append,
    /// An fsync durability point.
    Sync,
    /// Sealing the active segment and rolling to the next.
    Seal,
    /// Snapshot-rewrite compaction of the whole table.
    Compact,
    /// Truncating the log (post-snapshot, or corrupt-record excision).
    Truncate,
}

/// A fault injected on one store operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreFault {
    /// The WAL write fails with an I/O error.
    WriteError,
    /// The fsync fails with an I/O error.
    SyncError,
    /// The segment seal fails with an I/O error.
    SealError,
    /// Compaction fails before writing the snapshot.
    CompactError,
    /// The log truncation fails with an I/O error.
    TruncateError,
}

impl StoreFault {
    /// Stable kind name, used as the `kind` telemetry label.
    pub fn kind(&self) -> &'static str {
        match self {
            StoreFault::WriteError => "wal_write",
            StoreFault::SyncError => "wal_sync",
            StoreFault::SealError => "wal_seal",
            StoreFault::CompactError => "wal_compact",
            StoreFault::TruncateError => "wal_truncate",
        }
    }
}

/// Domain salts keep the decision streams of unrelated fault families
/// statistically independent even at identical coordinates.
const DOMAIN_COMMAND: u64 = 0x00C0_FFEE_0001;
const DOMAIN_STORE: u64 = 0x00C0_FFEE_0002;
const DOMAIN_TORN: u64 = 0x00C0_FFEE_0003;
const DOMAIN_BUS: u64 = 0x00C0_FFEE_0004;

/// A deterministic, seeded fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The run seed all decision streams derive from.
    pub seed: u64,
    /// Probability that any one device command draws a fault.
    pub command_rate: f64,
    /// Upper bound on [`CommandFault::Delay`] recovery, ticks (≥ 1 when
    /// delays are possible).
    pub delay_max_ticks: u64,
    /// How long a [`CommandFault::Stuck`] actuator stays wedged, ticks.
    pub stuck_ticks: u64,
    /// Probability that a WAL append fails.
    pub store_write_rate: f64,
    /// Probability that a WAL fsync fails.
    pub store_sync_rate: f64,
    /// Probability that a segment seal fails.
    pub store_seal_rate: f64,
    /// Probability that a compaction fails before writing anything.
    pub store_compact_rate: f64,
    /// Probability that a log truncation fails.
    pub store_truncate_rate: f64,
    /// Probability that a store reopen finds a torn tail.
    pub torn_tail_rate: f64,
    /// Probability that a bus subscriber stalls (stops draining) for a
    /// given tick.
    pub bus_stall_rate: f64,
}

impl FaultPlan {
    /// A plan that never injects anything (all rates zero).
    pub fn disabled(seed: u64) -> Self {
        FaultPlan {
            seed,
            command_rate: 0.0,
            delay_max_ticks: 2,
            stuck_ticks: 3,
            store_write_rate: 0.0,
            store_sync_rate: 0.0,
            store_seal_rate: 0.0,
            store_compact_rate: 0.0,
            store_truncate_rate: 0.0,
            torn_tail_rate: 0.0,
            bus_stall_rate: 0.0,
        }
    }

    /// A plan injecting command faults at `rate` with default delay/stuck
    /// shapes (delay ≤ 2 ticks, stuck for 3).
    pub fn commands(seed: u64, rate: f64) -> Self {
        FaultPlan {
            command_rate: rate.clamp(0.0, 1.0),
            ..Self::disabled(seed)
        }
    }

    /// Adds store faults (write + fsync + seal + compact + truncate at
    /// `rate`, torn tail at `rate/4`).
    pub fn with_store_faults(mut self, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        self.store_write_rate = rate;
        self.store_sync_rate = rate;
        self.store_seal_rate = rate;
        self.store_compact_rate = rate;
        self.store_truncate_rate = rate;
        self.torn_tail_rate = rate / 4.0;
        self
    }

    /// Adds bus stall windows at `rate`.
    pub fn with_bus_stalls(mut self, rate: f64) -> Self {
        self.bus_stall_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// True when no fault family has a positive rate.
    pub fn is_disabled(&self) -> bool {
        self.command_rate <= 0.0
            && self.store_write_rate <= 0.0
            && self.store_sync_rate <= 0.0
            && self.store_seal_rate <= 0.0
            && self.store_compact_rate <= 0.0
            && self.store_truncate_rate <= 0.0
            && self.torn_tail_rate <= 0.0
            && self.bus_stall_rate <= 0.0
    }

    /// The ChaCha8 stream for one decision coordinate.
    fn stream(&self, domain: u64, a: u64, b: u64) -> ChaCha8Rng {
        // Mix the coordinates through splitmix64 so adjacent ticks /
        // similar keys land in unrelated streams, then fold in the run
        // seed — the same derivation shape as `imcf_pool::derive_seed`.
        let mixed = splitmix64(domain ^ splitmix64(a) ^ splitmix64(b.wrapping_add(0x9E37)));
        ChaCha8Rng::seed_from_u64(self.seed ^ mixed)
    }

    /// The fault (if any) hitting a command sent to `target` at `tick`.
    ///
    /// `target` is any stable device key — the controller uses the thing's
    /// host address. Pure in `(self, tick, target)`.
    pub fn command_fault(&self, tick: u64, target: &str) -> Option<CommandFault> {
        if self.command_rate <= 0.0 {
            return None;
        }
        let mut rng = self.stream(DOMAIN_COMMAND, tick, fnv1a(target));
        if !rng.gen_bool(self.command_rate.clamp(0.0, 1.0)) {
            return None;
        }
        // Split the fault mass: half drops, a quarter delays, a quarter
        // wedges the actuator.
        let kind = rng.gen_range(0..4u32);
        Some(match kind {
            0 | 1 => CommandFault::Drop,
            2 => CommandFault::Delay {
                ticks: rng.gen_range(1..=self.delay_max_ticks.max(1)),
            },
            _ => CommandFault::Stuck {
                ticks: self.stuck_ticks.max(1),
            },
        })
    }

    /// The effective failure reason for a command to `target` at `tick`,
    /// including *stuck windows*: a [`CommandFault::Stuck`] drawn at an
    /// earlier tick wedges the actuator for its whole duration, failing
    /// every command in the window. Pure in `(self, tick, target)` — the
    /// scan looks back at most `stuck_ticks` draws.
    pub fn fault_reason(&self, tick: u64, target: &str) -> Option<&'static str> {
        for back in 1..=self.stuck_ticks {
            if back > tick {
                break;
            }
            if let Some(CommandFault::Stuck { ticks }) = self.command_fault(tick - back, target) {
                if back < ticks {
                    return Some("cmd_stuck");
                }
            }
        }
        self.command_fault(tick, target).map(|f| f.kind())
    }

    /// The fault (if any) hitting the `op_index`-th WAL operation.
    ///
    /// `op_index` is a per-log monotonic counter maintained by whoever
    /// installs the hook; pure in `(self, op, op_index)`.
    pub fn store_fault(&self, op: StoreOp, op_index: u64) -> Option<StoreFault> {
        let (rate, fault, salt) = match op {
            StoreOp::Append => (self.store_write_rate, StoreFault::WriteError, 0),
            StoreOp::Sync => (self.store_sync_rate, StoreFault::SyncError, 1),
            StoreOp::Seal => (self.store_seal_rate, StoreFault::SealError, 2),
            StoreOp::Compact => (self.store_compact_rate, StoreFault::CompactError, 3),
            StoreOp::Truncate => (self.store_truncate_rate, StoreFault::TruncateError, 4),
        };
        if rate <= 0.0 {
            return None;
        }
        let mut rng = self.stream(DOMAIN_STORE, op_index, salt);
        rng.gen_bool(rate.clamp(0.0, 1.0)).then_some(fault)
    }

    /// Bytes to chop off the WAL tail at the `reopen_index`-th reopen (the
    /// crash-mid-write simulation), or `None` for a clean reopen.
    pub fn torn_tail_bytes(&self, reopen_index: u64) -> Option<u64> {
        if self.torn_tail_rate <= 0.0 {
            return None;
        }
        let mut rng = self.stream(DOMAIN_TORN, reopen_index, 0);
        rng.gen_bool(self.torn_tail_rate.clamp(0.0, 1.0))
            .then(|| rng.gen_range(1..=6u64))
    }

    /// Whether the chaos subscriber stalls (does not drain) during `tick`.
    pub fn bus_stalled(&self, tick: u64) -> bool {
        if self.bus_stall_rate <= 0.0 {
            return false;
        }
        let mut rng = self.stream(DOMAIN_BUS, tick, 0);
        rng.gen_bool(self.bus_stall_rate.clamp(0.0, 1.0))
    }
}

/// splitmix64 finalizer (public-domain constant schedule).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// FNV-1a over a device key, folding strings into decision coordinates.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::commands(7, rate).with_store_faults(rate)
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let p = plan(0.3);
        // Query twice in different orders; answers must match.
        let forward: Vec<_> = (0..200)
            .map(|t| p.command_fault(t, "192.168.0.2"))
            .collect();
        let backward: Vec<_> = (0..200)
            .rev()
            .map(|t| p.command_fault(t, "192.168.0.2"))
            .collect();
        let rev: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, rev);
        // And a cloned plan agrees everywhere.
        let q = p.clone();
        for t in 0..200 {
            assert_eq!(
                p.command_fault(t, "host-a"),
                q.command_fault(t, "host-a"),
                "tick {t}"
            );
        }
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let p = plan(0.25);
        let n = (0..4000)
            .filter(|t| p.command_fault(*t, "h").is_some())
            .count();
        // Expect ≈1000; allow a wide band.
        assert!((700..=1300).contains(&n), "injected {n}/4000");
    }

    #[test]
    fn zero_rates_never_inject() {
        let p = FaultPlan::disabled(3);
        assert!(p.is_disabled());
        for t in 0..500 {
            assert_eq!(p.command_fault(t, "x"), None);
            assert_eq!(p.store_fault(StoreOp::Append, t), None);
            assert_eq!(p.store_fault(StoreOp::Sync, t), None);
            assert_eq!(p.store_fault(StoreOp::Seal, t), None);
            assert_eq!(p.store_fault(StoreOp::Compact, t), None);
            assert_eq!(p.store_fault(StoreOp::Truncate, t), None);
            assert_eq!(p.torn_tail_bytes(t), None);
            assert!(!p.bus_stalled(t));
        }
    }

    #[test]
    fn targets_draw_independent_streams() {
        let p = plan(0.5);
        let a: Vec<_> = (0..64).map(|t| p.command_fault(t, "a").is_some()).collect();
        let b: Vec<_> = (0..64).map(|t| p.command_fault(t, "b").is_some()).collect();
        assert_ne!(a, b, "distinct targets should not share a fault stream");
    }

    #[test]
    fn serde_round_trip_preserves_decisions() {
        let p = plan(0.4).with_bus_stalls(0.2);
        let json = serde_json::to_string(&p).unwrap();
        let q: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
        for t in 0..100 {
            assert_eq!(p.command_fault(t, "h"), q.command_fault(t, "h"));
            assert_eq!(p.torn_tail_bytes(t), q.torn_tail_bytes(t));
            assert_eq!(p.bus_stalled(t), q.bus_stalled(t));
        }
    }

    #[test]
    fn fault_shapes_respect_configuration() {
        let p = FaultPlan {
            command_rate: 1.0,
            delay_max_ticks: 4,
            stuck_ticks: 7,
            ..FaultPlan::disabled(11)
        };
        let mut saw = [false; 3];
        for t in 0..200 {
            match p.command_fault(t, "h") {
                Some(CommandFault::Drop) => saw[0] = true,
                Some(CommandFault::Delay { ticks }) => {
                    assert!((1..=4).contains(&ticks));
                    saw[1] = true;
                }
                Some(CommandFault::Stuck { ticks }) => {
                    assert_eq!(ticks, 7);
                    saw[2] = true;
                }
                None => panic!("rate 1.0 must always fault"),
            }
        }
        assert!(saw.iter().all(|s| *s), "all fault kinds drawn: {saw:?}");
    }

    #[test]
    fn store_and_torn_faults_fire_at_full_rate() {
        let p = FaultPlan::disabled(0).with_store_faults(1.0);
        assert_eq!(
            p.store_fault(StoreOp::Append, 0),
            Some(StoreFault::WriteError)
        );
        assert_eq!(p.store_fault(StoreOp::Sync, 0), Some(StoreFault::SyncError));
        assert_eq!(p.store_fault(StoreOp::Seal, 0), Some(StoreFault::SealError));
        assert_eq!(
            p.store_fault(StoreOp::Compact, 0),
            Some(StoreFault::CompactError)
        );
        assert_eq!(
            p.store_fault(StoreOp::Truncate, 0),
            Some(StoreFault::TruncateError)
        );
        assert_eq!(p.torn_tail_rate, 0.25);
        let n = (0..400).filter(|i| p.torn_tail_bytes(*i).is_some()).count();
        assert!((50..=150).contains(&n), "torn on {n}/400 reopens");
        for i in 0..400 {
            if let Some(bytes) = p.torn_tail_bytes(i) {
                assert!((1..=6).contains(&bytes));
            }
        }
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(CommandFault::Drop.kind(), "cmd_drop");
        assert_eq!(CommandFault::Delay { ticks: 1 }.kind(), "cmd_delay");
        assert_eq!(CommandFault::Stuck { ticks: 1 }.kind(), "cmd_stuck");
        assert_eq!(StoreFault::WriteError.kind(), "wal_write");
        assert_eq!(StoreFault::SyncError.kind(), "wal_sync");
        assert_eq!(StoreFault::SealError.kind(), "wal_seal");
        assert_eq!(StoreFault::CompactError.kind(), "wal_compact");
        assert_eq!(StoreFault::TruncateError.kind(), "wal_truncate");
    }
}
