//! Per-device circuit breaker: closed → open → half-open.
//!
//! The breaker sees every actuation outcome for its device. Consecutive
//! failures trip it **open** (the device is quarantined; the planner
//! drops its candidates). After a cooldown measured in ticks the breaker
//! turns **half-open** and admits exactly one probe command: success
//! closes it, failure re-opens it with a fresh cooldown.
//!
//! All clocks are scheduler ticks — there is no wall-clock state, so the
//! machine is deterministic and serializable mid-flight.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Ticks the breaker stays open before probing (half-open).
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 4,
        }
    }
}

/// The breaker state machine's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Traffic flows; failures are being counted.
    Closed,
    /// Device quarantined until the cooldown elapses.
    Open,
    /// One probe command is admitted to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for exposition.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One device's circuit breaker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Tick at which an open breaker may go half-open.
    reopen_at: u64,
    /// Lifetime open transitions.
    times_opened: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            reopen_at: 0,
            times_opened: 0,
        }
    }

    /// Current position, advancing open → half-open if the cooldown has
    /// elapsed by `tick`.
    pub fn state_at(&mut self, tick: u64) -> BreakerState {
        if self.state == BreakerState::Open && tick >= self.reopen_at {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// True when a command may be sent at `tick` (closed, or the one
    /// half-open probe).
    pub fn allows(&mut self, tick: u64) -> bool {
        self.state_at(tick) != BreakerState::Open
    }

    /// Records a successful actuation.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed actuation at `tick`. Returns `true` when this
    /// failure *transitioned* the breaker to open (for telemetry — each
    /// open is counted once).
    pub fn record_failure(&mut self, tick: u64) -> bool {
        match self.state_at(tick) {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open.
                self.open_at(tick);
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.open_at(tick);
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    fn open_at(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        self.reopen_at = tick + self.config.cooldown_ticks.max(1);
        self.times_opened += 1;
        imcf_telemetry::global().counter("breaker.open").inc();
        if imcf_telemetry::trace::active() {
            imcf_telemetry::trace::point(
                "breaker.open",
                &[
                    ("tick", &tick.to_string()),
                    ("reopen_at", &self.reopen_at.to_string()),
                ],
            );
        }
        // A device entering quarantine is an anomaly worth a flight dump.
        imcf_telemetry::trace::recorder().trigger("breaker_open");
    }

    /// Lifetime count of closed/half-open → open transitions.
    pub fn times_opened(&self) -> u64 {
        self.times_opened
    }
}

/// Point-in-time view of one breaker, for the REST surface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    /// Thing UID the breaker guards.
    pub thing: String,
    /// Position at snapshot time.
    pub state: BreakerState,
    /// Failures counted toward the next trip.
    pub consecutive_failures: u32,
    /// Lifetime open transitions.
    pub times_opened: u64,
}

/// All breakers for one controller, keyed by thing UID.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerBank {
    config: BreakerConfig,
    breakers: BTreeMap<String, CircuitBreaker>,
}

impl BreakerBank {
    /// An empty bank creating breakers with `config`.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerBank {
            config,
            breakers: BTreeMap::new(),
        }
    }

    /// The breaker for `thing`, created closed on first sight.
    pub fn breaker(&mut self, thing: &str) -> &mut CircuitBreaker {
        self.breakers
            .entry(thing.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config))
    }

    /// True when `thing` may receive a command at `tick`.
    pub fn allows(&mut self, thing: &str, tick: u64) -> bool {
        self.breaker(thing).allows(tick)
    }

    /// Number of breakers currently open at `tick` (also pushed to the
    /// `breaker.open_now` gauge).
    pub fn open_now(&mut self, tick: u64) -> usize {
        let open = self
            .breakers
            .values_mut()
            .map(|b| b.state_at(tick))
            .filter(|s| *s == BreakerState::Open)
            .count();
        imcf_telemetry::global()
            .gauge("breaker.open_now")
            .set(open as f64);
        open
    }

    /// Snapshots of every breaker, ordered by thing UID.
    pub fn snapshots(&mut self, tick: u64) -> Vec<BreakerSnapshot> {
        let mut out = Vec::with_capacity(self.breakers.len());
        for (thing, b) in self.breakers.iter_mut() {
            let state = b.state_at(tick);
            out.push(BreakerSnapshot {
                thing: thing.clone(),
                state,
                consecutive_failures: b.consecutive_failures,
                times_opened: b.times_opened,
            });
        }
        out
    }

    /// Aggregate counters without allocation: lifetime open transitions
    /// summed over every breaker, plus how many are open at `tick` — the
    /// per-tick sampling counterpart of [`BreakerBank::snapshots`].
    pub fn totals(&mut self, tick: u64) -> (u64, u64) {
        let mut opens = 0u64;
        let mut open_now = 0u64;
        for b in self.breakers.values_mut() {
            if b.state_at(tick) == BreakerState::Open {
                open_now += 1;
            }
            opens += b.times_opened();
        }
        (opens, open_now)
    }

    /// Number of devices with a breaker.
    pub fn len(&self) -> usize {
        self.breakers.len()
    }

    /// True when no device has failed (or succeeded) yet.
    pub fn is_empty(&self) -> bool {
        self.breakers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 4,
        });
        assert!(!b.record_failure(0));
        assert!(!b.record_failure(1));
        assert_eq!(b.state_at(1), BreakerState::Closed);
        assert!(b.record_failure(2), "third consecutive failure trips");
        assert_eq!(b.state_at(2), BreakerState::Open);
        assert!(!b.allows(3));
        assert_eq!(b.times_opened(), 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.record_failure(0);
        b.record_failure(1);
        b.record_success();
        assert!(!b.record_failure(2), "run restarted after success");
        assert_eq!(b.state_at(2), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 4,
        });
        assert!(b.record_failure(10));
        assert!(!b.allows(13), "still cooling down");
        assert!(b.allows(14), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state_at(14), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state_at(14), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 4,
        });
        assert!(b.record_failure(0));
        assert!(b.allows(4));
        assert!(b.record_failure(4), "failed probe re-opens");
        assert_eq!(b.state_at(4), BreakerState::Open);
        assert!(!b.allows(7));
        assert!(b.allows(8));
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn bank_tracks_devices_independently() {
        let mut bank = BreakerBank::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 3,
        });
        bank.breaker("imcf:hvac:kitchen").record_failure(0);
        bank.breaker("imcf:hvac:kitchen").record_failure(1);
        bank.breaker("imcf:light:porch").record_failure(1);
        assert!(!bank.allows("imcf:hvac:kitchen", 2));
        assert!(bank.allows("imcf:light:porch", 2));
        assert_eq!(bank.open_now(2), 1);
        let snaps = bank.snapshots(2);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].thing, "imcf:hvac:kitchen");
        assert_eq!(snaps[0].state, BreakerState::Open);
        assert_eq!(snaps[1].state, BreakerState::Closed);
    }

    #[test]
    fn snapshots_round_trip_through_serde() {
        let mut bank = BreakerBank::new(BreakerConfig::default());
        bank.breaker("imcf:hvac:hall").record_failure(0);
        let snaps = bank.snapshots(1);
        let json = serde_json::to_string(&snaps).unwrap();
        let back: Vec<BreakerSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(snaps, back);
    }
}
