//! The ops-surface subcommands: `imcf top` (a live terminal dashboard
//! over `/rest/query` + `/rest/alerts`) and `imcf doctor` (a one-shot
//! JSON debug bundle with CI-friendly assertions).

use crate::args::ArgSpec;
use imcf_net::client::Connection;
use serde_json::Value;
use std::time::Duration;

/// Eight-level unicode sparkline over the point values.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::from("(no points)");
    }
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

fn get_json(conn: &mut Connection, target: &str) -> Result<Value, String> {
    let response = conn
        .round_trip("GET", target, b"")
        .map_err(|e| format!("GET {target} failed: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "GET {target} returned {}: {}",
            response.status,
            response.body_text()
        ));
    }
    serde_json::from_str(&response.body_text())
        .map_err(|e| format!("GET {target} returned invalid JSON: {e}"))
}

fn num(value: &Value) -> Option<f64> {
    match value {
        Value::Number(n) => Some(n.as_f64()),
        _ => None,
    }
}

fn percent_encode(series: &str) -> String {
    let mut out = String::with_capacity(series.len());
    for b in series.bytes() {
        match b {
            b'{' => out.push_str("%7B"),
            b'}' => out.push_str("%7D"),
            b'=' => out.push_str("%3D"),
            b',' => out.push_str("%2C"),
            b'+' => out.push_str("%2B"),
            b'&' => out.push_str("%26"),
            b'%' => out.push_str("%25"),
            other => out.push(other as char),
        }
    }
    out
}

/// One dashboard frame rendered as text.
fn render_frame(conn: &mut Connection, limit: usize) -> Result<String, String> {
    let alerts = get_json(conn, "/rest/alerts")?;
    let listing = get_json(conn, "/rest/query")?;

    let tick = alerts.get("tick").and_then(num).unwrap_or(0.0) as u64;
    let firing = alerts.get("firing").and_then(num).unwrap_or(0.0) as u64;
    let series_names: Vec<String> = listing
        .get("series")
        .and_then(|v| v.as_array())
        .map(|rows| {
            rows.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();

    let mut out = String::new();
    out.push_str(&format!(
        "imcf top — tick {tick} — {} series retained — {firing} alert(s) firing\n\n",
        series_names.len()
    ));

    out.push_str("ALERTS\n");
    out.push_str(&format!(
        "  {:<28} {:<8} {:<8} {:>12} {:>6}  EXPR\n",
        "NAME", "SEVERITY", "STATE", "VALUE", "FIRED"
    ));
    if let Some(rows) = alerts.get("alerts").and_then(|v| v.as_array()) {
        for row in rows {
            let name = row.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let severity = row.get("severity").and_then(|v| v.as_str()).unwrap_or("?");
            let state = row.get("state").and_then(|v| v.as_str()).unwrap_or("?");
            let value = row
                .get("value")
                .and_then(num)
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| String::from("-"));
            let fired = row.get("fired_count").and_then(num).unwrap_or(0.0) as u64;
            let expr = row.get("expr").and_then(|v| v.as_str()).unwrap_or("?");
            let cmp = row.get("cmp").and_then(|v| v.as_str()).unwrap_or("?");
            let threshold = row.get("threshold").and_then(num).unwrap_or(0.0);
            out.push_str(&format!(
                "  {name:<28} {severity:<8} {state:<8} {value:>12} {fired:>6}  {expr} {cmp} {threshold}\n"
            ));
        }
    }

    out.push_str(&format!("\nSERIES (showing {limit} of sorted set)\n"));
    out.push_str(&format!(
        "  {:<44} {:>12}  LAST {} SAMPLES\n",
        "NAME", "VALUE", "·"
    ));
    for name in series_names.iter().take(limit) {
        let encoded = percent_encode(name);
        let points = get_json(conn, &format!("/rest/query?series={encoded}&fn=points"))?;
        let values: Vec<f64> = points
            .get("points")
            .and_then(|v| v.as_array())
            .map(|rows| {
                rows.iter()
                    .filter_map(|p| p.as_array().and_then(|pair| pair.get(1)).and_then(num))
                    .collect()
            })
            .unwrap_or_default();
        let value = get_json(conn, &format!("/rest/query?series={encoded}"))?
            .get("value")
            .and_then(num)
            .unwrap_or(0.0);
        let tail: Vec<f64> = values.iter().rev().take(32).rev().cloned().collect();
        out.push_str(&format!(
            "  {name:<44} {value:>12.3}  {}\n",
            sparkline(&tail)
        ));
    }
    Ok(out)
}

/// `imcf top` — periodically redraw a dashboard of retained series and
/// alert states from a running `imcf serve`.
pub fn top(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &[
            "addr",
            "refresh-ms",
            "iterations",
            "limit",
            "timeout-ms",
            "plain",
        ],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let addr = parsed
        .get("addr")
        .ok_or("--addr <host:port> is required (the address `imcf serve` printed)")?
        .to_string();
    let refresh = Duration::from_millis(parsed.get_u64("refresh-ms", 1000)?.max(50));
    let iterations = parsed.get_u64("iterations", 0)?;
    let limit = parsed.get_u64("limit", 16)?.max(1) as usize;
    let timeout = Duration::from_millis(parsed.get_u64("timeout-ms", 5000)?.max(1));
    let plain = matches!(parsed.get("plain"), Some("1") | Some("true"));

    let mut conn =
        Connection::open(&addr, timeout).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut frame_no: u64 = 0;
    loop {
        let frame = render_frame(&mut conn, limit)?;
        if !plain {
            // ANSI clear-screen + home keeps the dashboard in place.
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        frame_no += 1;
        if iterations > 0 && frame_no >= iterations {
            break;
        }
        std::thread::sleep(refresh);
    }
    Ok(())
}

/// `imcf doctor` — pull every observability surface from a running
/// server into one JSON bundle, run health assertions, and write the
/// bundle to disk for CI artifacts / offline debugging.
pub fn doctor(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &[
            "addr",
            "timeout-ms",
            "out",
            "require-series",
            "require-alert",
        ],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let addr = parsed
        .get("addr")
        .ok_or("--addr <host:port> is required (the address `imcf serve` printed)")?
        .to_string();
    let timeout = Duration::from_millis(parsed.get_u64("timeout-ms", 5000)?.max(1));

    let mut conn =
        Connection::open(&addr, timeout).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let healthz = get_json(&mut conn, "/rest/healthz")?;
    let readyz = conn
        .round_trip("GET", "/rest/readyz", b"")
        .map_err(|e| format!("GET /rest/readyz failed: {e}"))?;
    let metrics = get_json(&mut conn, "/rest/metrics?format=json")?;
    let listing = get_json(&mut conn, "/rest/query")?;
    let alerts = get_json(&mut conn, "/rest/alerts")?;
    let traces = get_json(&mut conn, "/rest/traces")?;

    let series_names: Vec<String> = listing
        .get("series")
        .and_then(|v| v.as_array())
        .map(|rows| {
            rows.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();

    let bundle = Value::Object(vec![
        ("addr".to_string(), serde_json::to_value(&addr)),
        ("healthz".to_string(), healthz.clone()),
        (
            "readyz_status".to_string(),
            serde_json::to_value(&readyz.status),
        ),
        ("metrics".to_string(), metrics),
        ("series".to_string(), listing),
        ("alerts".to_string(), alerts.clone()),
        ("traces".to_string(), traces),
    ]);

    let out_path = match parsed.get("out") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir =
                std::env::var("IMCF_OUT").unwrap_or_else(|_| String::from("target/experiments"));
            std::path::PathBuf::from(dir).join("doctor.json")
        }
    };
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    }
    let json = serde_json::to_string_pretty(&bundle).map_err(|e| e.to_string())?;
    std::fs::write(&out_path, json)
        .map_err(|e| format!("cannot write bundle to `{}`: {e}", out_path.display()))?;

    let tick = alerts.get("tick").and_then(num).unwrap_or(0.0) as u64;
    let firing = alerts.get("firing").and_then(num).unwrap_or(0.0) as u64;
    println!(
        "doctor: {} — tick {tick}, {} series retained, {firing} alert(s) firing",
        addr,
        series_names.len()
    );
    println!(
        "  healthz: {}",
        if healthz.get("status").and_then(|v| v.as_str()) == Some("ok") {
            "ok"
        } else {
            "NOT OK"
        }
    );
    println!("  readyz:  {}", readyz.status);
    println!("  bundle:  {}", out_path.display());

    let mut failures = Vec::new();
    if healthz.get("status").and_then(|v| v.as_str()) != Some("ok") {
        failures.push(String::from("healthz did not report status=ok"));
    }
    if let Some(required) = parsed.get("require-series") {
        for name in required.split(',').filter(|s| !s.is_empty()) {
            if !series_names.iter().any(|s| s == name) {
                failures.push(format!("required series `{name}` is not retained"));
            }
        }
    }
    if let Some(alert_name) = parsed.get("require-alert") {
        let firing_named = alerts
            .get("alerts")
            .and_then(|v| v.as_array())
            .map(|rows| {
                rows.iter().any(|row| {
                    row.get("name").and_then(|v| v.as_str()) == Some(alert_name)
                        && row.get("state").and_then(|v| v.as_str()) == Some("firing")
                })
            })
            .unwrap_or(false);
        if !firing_named {
            failures.push(format!("required alert `{alert_name}` is not firing"));
        }
    }
    if failures.is_empty() {
        println!("  checks:  all passed");
        Ok(())
    } else {
        for failure in &failures {
            eprintln!("  check failed: {failure}");
        }
        Err(format!("{} doctor check(s) failed", failures.len()))
    }
}
