//! `imcf` — the command-line interface to the IoT Meta-Control Firewall.
//!
//! ```text
//! imcf validate <mrt-file>                      check a rule table for conflicts
//! imcf plan <mrt-file> [options]                plan a horizon under the table's budget
//! imcf simulate --dataset <flat|house|dorms>    run the paper's datasets end to end
//! imcf ecp --dataset <flat|house|dorms>         print a derived consumption profile
//! imcf workflow <wf-file> [env options]         dry-run a procedural workflow
//! ```
//!
//! Argument handling is deliberately dependency-free: `--key value` pairs
//! and positional file names, parsed by [`args::ArgSpec`].

mod args;
mod commands;
mod crash_commands;
mod net_commands;
mod obs_commands;

use std::process::ExitCode;

const USAGE: &str = "\
imcf — the IoT Meta-Control Firewall

USAGE:
  imcf validate <mrt-file>
  imcf plan <mrt-file> [--days N] [--climate mediterranean|continental]
                       [--seed N] [--k N] [--tau N] [--savings PCT]
                       [--jobs N]  (parallel slot planning; implies strict
                                    per-slot budgets — no carry-over)
  imcf simulate --dataset <flat|house|dorms> [--months N] [--seed N]
  imcf ecp --dataset <flat|house|dorms> [--seed N]
  imcf workflow <wf-file> [--temperature C] [--light L] [--hour H] [--month M]
  imcf schedule <loads-file> [--horizon H] [--headroom KWH]
  imcf chaos [--rate R] [--store-rate R] [--ticks N] [--seed N] [--zones N]
             [--outage-rate R] [--journal DIR]  (fault-injection soak run)
             [--trace PATH]  (record causal traces; write Chrome-trace JSON)
  imcf chaos --crash [--kills K] [--ticks N] [--seed N] [--zones N]
             [--checkpoint-every N] [--rate R] [--max-occurrence M]
             [--dir DIR] [--report PATH]
             (kill-at-crashpoint soak: K child kills + restarts must keep
              actuation exactly-once and recovery byte-identical)
  imcf trace explain <command-id> --input <trace.json>
             (render the causal chain behind a command in plain text)
  imcf serve [--port N] [--zones Z] [--duration-secs S] [--max-conns C]
             [--read-timeout-ms MS] [--write-timeout-ms MS]
             [--max-requests-per-conn R] [--burst B] [--refill-per-sec T]
             (HTTP/1.1 network plane over a demo home; port 0 = ephemeral)
  imcf loadgen --addr HOST:PORT [--connections K] [--requests M]
             [--mix items,post,metrics,...] [--zone Z] [--timeout-ms MS]
             [--out PATH] [--strict true]
             (closed-loop load run; writes a JSON report with RPS + p50/p99/p999)
  imcf top --addr HOST:PORT [--refresh-ms MS] [--iterations N] [--limit K]
             [--timeout-ms MS] [--plain true]
             (live dashboard: retained series sparklines + alert table;
              iterations 0 = refresh until interrupted)
  imcf doctor --addr HOST:PORT [--out PATH] [--timeout-ms MS]
             [--require-series a,b,...] [--require-alert NAME]
             (one-shot JSON debug bundle: health, metrics, series, alerts,
              traces; --require-* flags turn missing data into exit 1)

GLOBAL OPTIONS:
  --telemetry <path>    dump a JSON telemetry snapshot to <path> on exit

Run `imcf <command> --help` for details.";

fn main() -> ExitCode {
    // Piping output into `head` closes stdout early; exit quietly (the
    // shell convention is status 141) instead of panicking.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .map(|m| m.contains("Broken pipe"))
            .unwrap_or(false);
        if broken_pipe {
            std::process::exit(141);
        }
        default_hook(info);
    }));

    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = match extract_telemetry_flag(&mut argv) {
        Ok(path) => path,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let Some(command) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &argv[1..];
    let result = match command.as_str() {
        "validate" => commands::validate(rest),
        "plan" => commands::plan(rest),
        "simulate" => commands::simulate(rest),
        "ecp" => commands::ecp(rest),
        "workflow" => commands::workflow(rest),
        "schedule" => commands::schedule(rest),
        "chaos" => commands::chaos(rest),
        // Hidden: the crash soak's child incarnation (`chaos --crash`
        // respawns itself through this entry point).
        "chaos-child" => crash_commands::crash_child(rest),
        "trace" => commands::trace(rest),
        "serve" => net_commands::serve(rest),
        "loadgen" => net_commands::loadgen(rest),
        "top" => obs_commands::top(rest),
        "doctor" => obs_commands::doctor(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &telemetry_path {
        if let Err(e) = dump_telemetry(path) {
            eprintln!("error: cannot write telemetry snapshot to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Removes the global `--telemetry <path>` flag from argv (it may appear
/// anywhere) and returns the path, if given.
fn extract_telemetry_flag(argv: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(i) = argv.iter().position(|a| a == "--telemetry") else {
        return Ok(None);
    };
    if i + 1 >= argv.len() {
        return Err("option `--telemetry` needs a value".to_string());
    }
    let path = argv.remove(i + 1);
    argv.remove(i);
    Ok(Some(path))
}

/// Writes the global registry's JSON snapshot (metrics + trace events).
fn dump_telemetry(path: &str) -> std::io::Result<()> {
    std::fs::write(path, imcf_telemetry::global().json_snapshot_string())
}
