//! The network-plane subcommands: `imcf serve` and `imcf loadgen`.

use crate::args::ArgSpec;
use imcf_controller::api::Router;
use imcf_controller::cloud::RateLimit;
use imcf_controller::controller::{ControllerConfig, LocalController};
use imcf_core::calendar::PaperCalendar;
use imcf_net::loadgen::{self, LoadConfig};
use imcf_net::server::NetConfig;
use imcf_obs::{default_rules, ObsConfig, ObsEngine};
use imcf_sim::meter::EnergyMeter;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `imcf serve` — run the HTTP/1.1 network plane over a demo home.
///
/// Provisions a [`LocalController`] with `--zones` zones (HVAC + light
/// each), fronts its REST router with the `imcf-net` threaded server, and
/// serves until `--duration-secs` elapses (0 = until stdin reaches EOF or
/// a line saying `quit`), then shuts down gracefully, draining in-flight
/// requests.
///
/// An in-process [`ObsEngine`] samples the global telemetry registry
/// every `--tick-ms` milliseconds (one sampler tick each), which powers
/// `GET /rest/query`, `GET /rest/alerts`, `imcf top` and `imcf doctor`.
/// `--demo-alert true` bumps `breaker.open` each tick so the
/// `breaker.open.storm` rule fires — used by the CI smoke run to assert
/// the alerting path end to end.
pub fn serve(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &[
            "port",
            "zones",
            "duration-secs",
            "max-conns",
            "read-timeout-ms",
            "write-timeout-ms",
            "max-requests-per-conn",
            "burst",
            "refill-per-sec",
            "tick-ms",
            "demo-alert",
        ],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let port = parsed.get_u64("port", 0)?;
    let zones = parsed.get_u64("zones", 2)?.max(1) as usize;
    let duration_secs = parsed.get_u64("duration-secs", 0)?;
    let max_conns = parsed.get_u64("max-conns", 16)?.max(1) as usize;
    let read_timeout = Duration::from_millis(parsed.get_u64("read-timeout-ms", 5000)?.max(1));
    let write_timeout = Duration::from_millis(parsed.get_u64("write-timeout-ms", 5000)?.max(1));
    let max_requests_per_conn = parsed.get_u64("max-requests-per-conn", 1000)?.max(1) as u32;
    let burst = parsed.get_u64("burst", 0)?;
    let refill_per_sec = parsed.get_f64("refill-per-sec", 10.0)?;
    let tick_ms = parsed.get_u64("tick-ms", 200)?.max(1);
    let demo_alert = matches!(parsed.get("demo-alert"), Some("1") | Some("true"));
    let rate_limit = (burst > 0).then_some(RateLimit {
        burst: burst.min(u64::from(u32::MAX)) as u32,
        refill_per_tick: refill_per_sec,
    });

    let mut controller =
        LocalController::new(ControllerConfig::default(), PaperCalendar::january_start());
    for z in 0..zones {
        controller
            .provision_zone(&format!("zone{z}"))
            .map_err(|e| format!("cannot provision zone{z}: {e}"))?;
    }
    let engine = ObsEngine::in_memory(ObsConfig::default(), default_rules())
        .map_err(|e| format!("invalid alert rules: {e}"))?;
    let obs = Arc::new(Mutex::new(engine));
    let router = Router::new(
        controller.registry(),
        controller.firewall(),
        Arc::new(Mutex::new(EnergyMeter::new(PaperCalendar::january_start()))),
    )
    .with_breakers(controller.breakers(), controller.chaos_clock())
    .with_obs(obs.clone());
    let readiness = router.readiness();

    // The sampler thread: one obs tick per `--tick-ms`, reading whatever
    // the server threads have recorded into the global telemetry
    // registry (request counters, handling-latency histogram, ...).
    let sampling = Arc::new(AtomicBool::new(true));
    let sampler = {
        let obs = obs.clone();
        let sampling = sampling.clone();
        std::thread::spawn(move || {
            let mut tick: u64 = 0;
            while sampling.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(tick_ms));
                tick += 1;
                if demo_alert {
                    imcf_telemetry::global().counter("breaker.open").add(1);
                }
                obs.lock().observe(tick, imcf_telemetry::global());
            }
        })
    };

    let config = NetConfig {
        addr: format!("127.0.0.1:{port}"),
        max_connections: max_conns,
        read_timeout,
        write_timeout,
        max_requests_per_conn,
        rate_limit,
        ..NetConfig::default()
    };
    let handle = imcf_net::serve(config, Arc::new(router))
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    println!(
        "imcf-net: serving {zones} zone(s) on {} (max-conns {max_conns}, keep-alive cap {max_requests_per_conn}{})",
        handle.addr(),
        match rate_limit {
            Some(l) => format!(", edge bucket {}+{}/s", l.burst, l.refill_per_tick),
            None => String::from(", no edge rate limit"),
        }
    );
    println!(
        "imcf-obs: sampling telemetry every {tick_ms} ms{} — query with `imcf top --addr {}`",
        if demo_alert {
            " (demo alert storm on)"
        } else {
            ""
        },
        handle.addr()
    );

    if duration_secs > 0 {
        std::thread::sleep(Duration::from_secs(duration_secs));
    } else {
        println!("imcf-net: reading stdin — EOF or `quit` shuts down");
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) => break,
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }
    // Flip readiness before the drain: load balancers probing
    // `/rest/readyz` see 503 and stop routing here while in-flight
    // requests (and liveness probes) still complete.
    readiness.store(false, std::sync::atomic::Ordering::SeqCst);
    println!("imcf-net: shutting down (readyz=503, draining in-flight requests)");
    sampling.store(false, Ordering::SeqCst);
    handle.shutdown();
    let _ = sampler.join();
    Ok(())
}

/// `imcf loadgen` — drive a running `imcf serve` with a closed loop and
/// report sustained RPS plus p50/p99/p999 latency.
pub fn loadgen(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &[
            "addr",
            "connections",
            "requests",
            "mix",
            "zone",
            "timeout-ms",
            "out",
            "strict",
        ],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let addr = parsed
        .get("addr")
        .ok_or("--addr <host:port> is required (the address `imcf serve` printed)")?
        .to_string();
    let connections = parsed.get_u64("connections", 4)?.max(1) as usize;
    let requests_per_conn = parsed.get_u64("requests", 100)?.max(1);
    let mix_names = parsed
        .get("mix")
        .unwrap_or("items,item,post,firewall,metrics");
    let zone = parsed.get("zone").unwrap_or("zone0");
    let timeout = Duration::from_millis(parsed.get_u64("timeout-ms", 10_000)?.max(1));
    let strict = matches!(parsed.get("strict"), Some("1") | Some("true"));

    let config = LoadConfig {
        addr,
        connections,
        requests_per_conn,
        mix: loadgen::route_mix(mix_names, zone)?,
        timeout,
    };
    let report = loadgen::run(&config)?;

    println!(
        "loadgen: {} conn × {} req against {} ({} routes: {})",
        report.connections,
        requests_per_conn,
        config.addr,
        config.mix.len(),
        mix_names
    );
    println!(
        "  completed {}/{} ({} reconnects, {} io errors) in {:.2} s — {:.0} req/s",
        report.completed,
        report.attempted,
        report.reconnects,
        report.io_errors,
        report.wall_secs,
        report.rps
    );
    println!(
        "  status classes: 2xx={} 3xx={} 4xx={} 5xx={}",
        report.class("2xx"),
        report.class("3xx"),
        report.class("4xx"),
        report.class("5xx")
    );
    println!(
        "  latency µs: p50={:.0} p99={:.0} p999={:.0} mean={:.0}",
        report.p50_micros, report.p99_micros, report.p999_micros, report.mean_micros
    );

    let out_path = match parsed.get("out") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir =
                std::env::var("IMCF_OUT").unwrap_or_else(|_| String::from("target/experiments"));
            std::path::PathBuf::from(dir).join("loadgen.json")
        }
    };
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    }
    let json = serde_json::to_string_pretty(&report.to_json()).map_err(|e| e.to_string())?;
    std::fs::write(&out_path, json)
        .map_err(|e| format!("cannot write report to `{}`: {e}", out_path.display()))?;
    println!("  report: {}", out_path.display());

    if strict {
        if report.class("2xx") == 0 {
            return Err(String::from("strict check failed: zero 2xx responses"));
        }
        if report.class("5xx") > 0 {
            return Err(format!(
                "strict check failed: {} 5xx responses",
                report.class("5xx")
            ));
        }
    }
    Ok(())
}
