//! The CLI subcommands.

use crate::args::ArgSpec;
use imcf_core::amortization::{AmortizationPlan, ApKind};
use imcf_core::calendar::{PaperCalendar, HOURS_PER_MONTH};
use imcf_core::candidate::{CandidateRule, PlanningSlot};
use imcf_core::ecp::Ecp;
use imcf_core::init::InitStrategy;
use imcf_core::planner::{EnergyPlanner, PlannerConfig};
use imcf_rules::action::{Action, DeviceClass};
use imcf_rules::conflict;
use imcf_rules::env::EnvSnapshot;
use imcf_rules::meta_rule::RuleClass;
use imcf_rules::mrt::Mrt;
use imcf_rules::parse::parse_mrt;
use imcf_rules::workflow_parse::parse_workflow;
use imcf_sim::building::{Dataset, DatasetKind};
use imcf_sim::slots::SlotBuilder;
use imcf_traces::generator::{ClimateModel, TraceGenerator};
use imcf_traces::series::ZoneTrace;

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_mrt(path: &str) -> Result<Mrt, String> {
    parse_mrt(&read_file(path)?).map_err(|e| format!("{path}: {e}"))
}

fn climate(name: &str) -> Result<ClimateModel, String> {
    match name {
        "mediterranean" => Ok(ClimateModel::mediterranean()),
        "continental" => Ok(ClimateModel::continental()),
        other => Err(format!(
            "unknown climate `{other}` (mediterranean|continental)"
        )),
    }
}

fn dataset_kind(name: &str) -> Result<DatasetKind, String> {
    match name {
        "flat" => Ok(DatasetKind::Flat),
        "house" => Ok(DatasetKind::House),
        "dorms" => Ok(DatasetKind::Dorms),
        other => Err(format!("unknown dataset `{other}` (flat|house|dorms)")),
    }
}

/// `imcf validate <mrt-file>` — parse and conflict-check a rule table.
pub fn validate(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &[],
        min_positional: 1,
        max_positional: 1,
    };
    let parsed = spec.parse(argv)?;
    let Some(path) = parsed.positional(0) else {
        return Err(String::from("missing <path> argument"));
    };
    let mrt = load_mrt(path)?;
    println!(
        "{path}: {} rules ({} convenience, {} necessity, {} budget rows)",
        mrt.len(),
        mrt.droppable_rules().count(),
        mrt.necessity_rules().count(),
        mrt.budget_rules().count(),
    );
    // Worst-case pricing for the feasibility check: a flat split unit
    // holding against a 15 °C gap.
    let hvac = imcf_devices::energy::HvacModel::split_unit_flat();
    let conflicts = conflict::analyze(&mrt, |rule| match rule.action {
        Action::SetTemperature(v) => {
            imcf_devices::energy::DeviceEnergyModel::hourly_kwh(&hvac, v, v - 15.0)
        }
        Action::SetLight(v) => v / 100.0 * 0.1,
        Action::SetKwhLimit(_) => 0.0,
    });
    if conflicts.is_empty() {
        println!("no conflicts detected");
        return Ok(());
    }
    for c in &conflicts {
        println!("[{:?}] {c}", c.severity());
    }
    if conflicts
        .iter()
        .any(|c| c.severity() == conflict::Severity::Error)
    {
        return Err("table has unsatisfiable constraints".to_string());
    }
    Ok(())
}

fn build_slots(
    mrt: &Mrt,
    zone: &ZoneTrace,
    calendar: PaperCalendar,
    horizon: u64,
    budget_kwh: f64,
    savings: f64,
) -> Result<(AmortizationPlan, Vec<PlanningSlot>), String> {
    let hvac = imcf_devices::energy::HvacModel::split_unit_flat();
    let light = imcf_devices::energy::LightModel::led_array();
    let price = |action: &Action, t: f64, l: f64| -> f64 {
        use imcf_devices::energy::DeviceEnergyModel;
        match action {
            Action::SetTemperature(v) => hvac.hourly_kwh(*v, t),
            Action::SetLight(v) => light.hourly_kwh(*v, l),
            Action::SetKwhLimit(_) => 0.0,
        }
    };
    // ECP from the MR schedule over this trace.
    let trace = imcf_traces::series::Trace::new(calendar, vec![zone.clone()]);
    let ecp = imcf_traces::ecp::derive_ecp(&trace, |z, h| {
        let hod = calendar.hour_of_day(h);
        mrt.active_at_hour(hod)
            .iter()
            .map(|r| price(&r.action, z.temperature.at(h), z.light.at(h)))
            .sum()
    });
    let plan = AmortizationPlan::new(ApKind::Eaf, ecp, budget_kwh, horizon, calendar)
        .with_savings(savings);
    let mut slots = Vec::with_capacity(horizon as usize);
    for h in 0..horizon {
        let hod = calendar.hour_of_day(h);
        let candidates = mrt
            .active_at_hour(hod)
            .into_iter()
            .filter_map(|r| {
                let (desired, ambient, class) = match r.action {
                    Action::SetTemperature(v) => (v, zone.temperature.at(h), DeviceClass::Hvac),
                    Action::SetLight(v) => (v, zone.light.at(h), DeviceClass::Light),
                    Action::SetKwhLimit(_) => return None,
                };
                let mut c = CandidateRule::convenience(
                    r.id,
                    desired,
                    ambient,
                    price(&r.action, zone.temperature.at(h), zone.light.at(h)),
                );
                c.owner = r.owner.clone();
                c.device_class = class;
                c.necessity = r.class == RuleClass::Necessity;
                Some(c)
            })
            .collect();
        slots.push(PlanningSlot::new(h, candidates, plan.hourly_budget(h)));
    }
    Ok((plan, slots))
}

/// `imcf plan <mrt-file>` — plan a horizon under the table's budget row.
pub fn plan(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &["days", "climate", "seed", "k", "tau", "savings", "jobs"],
        min_positional: 1,
        max_positional: 1,
    };
    let parsed = spec.parse(argv)?;
    let Some(path) = parsed.positional(0) else {
        return Err(String::from("missing <path> argument"));
    };
    let mrt = load_mrt(path)?;
    let (budget, budget_horizon) = mrt
        .tightest_budget()
        .ok_or("the table has no `Set kWh Limit` row to plan against")?;

    let days = parsed.get_u64("days", (budget_horizon / 24).min(31))?;
    let horizon = (days * 24).min(budget_horizon);
    let seed = parsed.get_u64("seed", 0)?;
    let k = parsed.get_u64("k", 2)? as usize;
    let tau = parsed.get_u64("tau", 100)? as u32;
    let savings = parsed.get_f64("savings", 0.0)? / 100.0;
    if !(0.0..1.0).contains(&savings) {
        return Err("--savings must be in [0, 100)".to_string());
    }
    let climate_model = climate(parsed.get("climate").unwrap_or("mediterranean"))?;

    let calendar = PaperCalendar::january_start();
    let generator = TraceGenerator {
        climate: climate_model,
        calendar,
        horizon_hours: horizon,
        seed,
    };
    let zone = generator.generate_zone("home");

    // Budget share proportional to the planned horizon.
    let budget_share = budget * horizon as f64 / budget_horizon as f64;
    let (_plan, slots) = build_slots(&mrt, &zone, calendar, horizon, budget_share, savings)?;

    let planner = EnergyPlanner::from_config(PlannerConfig {
        k,
        tau_max: tau,
        init: InitStrategy::AllOnes,
        seed,
    });
    // `--jobs` selects the deterministic parallel path, which plans each
    // slot independently and therefore cannot bank unspent budget between
    // hours — equivalent to `without_carry_over()`. Without the flag the
    // legacy sequential planner (with carry-over) runs unchanged.
    let report = match parsed.get("jobs") {
        Some(_) => {
            let n = parsed.get_u64("jobs", 0)? as usize;
            if n == 0 {
                return Err("--jobs must be at least 1".to_string());
            }
            println!(
                "note: --jobs plans slots independently (strict per-slot budgets, no carry-over)"
            );
            planner.without_carry_over().plan_slots_parallel(slots, n)
        }
        None => planner.plan(slots),
    };
    println!(
        "planned {days} day(s) under a {budget_share:.1} kWh share of the {budget:.0} kWh budget"
    );
    println!("  F_CE : {:.2} %", report.fce_percent());
    println!("  F_E  : {:.1} kWh", report.fe_kwh());
    println!("  F_T  : {:.3} s", report.ft_seconds());
    println!(
        "  rules: {} instances, {} dropped",
        report.instances, report.dropped_instances
    );
    let table = report.owners.table();
    if table.len() > 1 || table.first().map(|(o, _)| !o.is_empty()).unwrap_or(false) {
        println!("  per-owner convenience error:");
        for (owner, fce) in table {
            let name = if owner.is_empty() {
                "(household)"
            } else {
                &owner
            };
            println!("    {name:<12} {fce:.3} %");
        }
    }
    Ok(())
}

/// `imcf simulate --dataset <kind>` — run the paper's datasets.
pub fn simulate(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &["dataset", "months", "seed"],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let kind = dataset_kind(parsed.get("dataset").ok_or("--dataset is required")?)?;
    let months = parsed.get_u64("months", 36)?.min(36);
    let seed = parsed.get_u64("seed", 0)?;

    let dataset = Dataset::build(kind, seed);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    let horizon = months * HOURS_PER_MONTH;

    println!(
        "{} — {} zones, {} rules, budget {:.0} kWh, {} month(s)",
        kind.label(),
        dataset.trace.zone_count(),
        dataset.total_rules(),
        dataset.budget_kwh,
        months
    );
    let nr = imcf_core::baselines::run_nr(builder.range(0..horizon));
    let ifttt = imcf_core::baselines::run_ifttt(builder.range(0..horizon));
    let ep = EnergyPlanner::from_config(PlannerConfig {
        seed,
        ..Default::default()
    })
    .plan(builder.range(0..horizon));
    let mr = imcf_core::baselines::run_mr(builder.range(0..horizon));
    println!(
        "{:<6} {:>10} {:>14} {:>10}",
        "method", "F_CE (%)", "F_E (kWh)", "F_T (s)"
    );
    for (name, r) in [("NR", &nr), ("IFTTT", &ifttt), ("EP", &ep), ("MR", &mr)] {
        println!(
            "{:<6} {:>10.2} {:>14.1} {:>10.3}",
            name,
            r.fce_percent(),
            r.fe_kwh(),
            r.ft_seconds()
        );
    }
    Ok(())
}

/// `imcf ecp --dataset <kind>` — print the derived consumption profile.
pub fn ecp(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &["dataset", "seed"],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let kind = dataset_kind(parsed.get("dataset").ok_or("--dataset is required")?)?;
    let seed = parsed.get_u64("seed", 0)?;
    let dataset = Dataset::build(kind, seed);
    let derived: Ecp = dataset.derive_mr_ecp();
    println!("derived ECP for {} (seed {seed}):", kind.label());
    println!("{:<6} {:>12} {:>12}", "month", "kWh/month", "kWh/hour");
    for m in 1..=12u32 {
        println!(
            "{:<6} {:>12.2} {:>12.3}",
            m,
            derived.month_kwh(m),
            derived.hourly_kwh(m)
        );
    }
    println!("{:<6} {:>12.2}", "total", derived.total_kwh());
    Ok(())
}

/// `imcf workflow <wf-file>` — parse and dry-run a workflow program.
pub fn workflow(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &["temperature", "light", "hour", "month"],
        min_positional: 1,
        max_positional: 1,
    };
    let parsed = spec.parse(argv)?;
    let Some(path) = parsed.positional(0) else {
        return Err(String::from("missing <path> argument"));
    };
    let wf = parse_workflow(&read_file(path)?).map_err(|e| format!("{path}: {e}"))?;

    let env = EnvSnapshot::neutral()
        .with_month(parsed.get_u64("month", 1)? as u32)
        .with_hour(parsed.get_u64("hour", 0)? as u32)
        .with_temperature(parsed.get_f64("temperature", 15.0)?)
        .with_light(parsed.get_f64("light", 0.0)?);
    let outcome = wf.run(&env).map_err(|e| format!("workflow failed: {e}"))?;
    println!(
        "workflow `{}` against T={}°C, light={}, {:02}:00:",
        wf.name, env.temperature, env.light_level, env.hour
    );
    if outcome.actions.is_empty() {
        println!("  (no actuations)");
    }
    for a in &outcome.actions {
        println!("  actuate: {a}");
    }
    println!("  waited {} simulated minutes", outcome.waited_minutes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(content: &str, ext: &str) -> (tempfile::TempDir, String) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(format!("input.{ext}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        (dir, path.to_string_lossy().into_owned())
    }

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    const GOOD_MRT: &str = "\
Night Heat | 01:00 - 07:00 | Set Temperature | 25 | owner=father
Morning Lights | 04:00 - 09:00 | Set Light | 40 | owner=mother
Budget | for 1 month | Set kWh Limit | 400
";

    #[test]
    fn validate_accepts_clean_table() {
        let (_dir, path) = write_temp(GOOD_MRT, "mrt");
        validate(&argv(&[&path])).unwrap();
    }

    #[test]
    fn validate_fails_on_infeasible_budget() {
        let text = "\
Freezer | 00:00 - 24:00 | Set Temperature | 4 | necessity
Budget | for 1 month | Set kWh Limit | 1
";
        let (_dir, path) = write_temp(text, "mrt");
        let err = validate(&argv(&[&path])).unwrap_err();
        assert!(err.contains("unsatisfiable"));
    }

    #[test]
    fn validate_rejects_bad_file() {
        let (_dir, path) = write_temp("not a rule table\n", "mrt");
        assert!(validate(&argv(&[&path])).is_err());
        assert!(validate(&argv(&["/nonexistent/file.mrt"])).is_err());
    }

    #[test]
    fn plan_runs_a_week() {
        let (_dir, path) = write_temp(GOOD_MRT, "mrt");
        plan(&argv(&[&path, "--days", "7", "--seed", "3", "--tau", "40"])).unwrap();
    }

    #[test]
    fn plan_requires_budget_row() {
        let (_dir, path) = write_temp("A | 01:00 - 02:00 | Set Light | 10\n", "mrt");
        let err = plan(&argv(&[&path])).unwrap_err();
        assert!(err.contains("no `Set kWh Limit`"));
    }

    #[test]
    fn plan_validates_savings_range() {
        let (_dir, path) = write_temp(GOOD_MRT, "mrt");
        let err = plan(&argv(&[&path, "--savings", "150"])).unwrap_err();
        assert!(err.contains("[0, 100)"));
    }

    #[test]
    fn simulate_needs_known_dataset() {
        let err = simulate(&argv(&["--dataset", "castle"])).unwrap_err();
        assert!(err.contains("unknown dataset"));
        let err = simulate(&argv(&[])).unwrap_err();
        assert!(err.contains("--dataset is required"));
    }

    #[test]
    fn simulate_flat_one_month() {
        simulate(&argv(&["--dataset", "flat", "--months", "1"])).unwrap();
    }

    #[test]
    fn ecp_prints_profile() {
        ecp(&argv(&["--dataset", "flat"])).unwrap();
    }

    #[test]
    fn workflow_dry_runs() {
        let wf =
            "workflow \"w\"\n  if env.temperature < 18\n    actuate temperature 21\n  end\nend\n";
        let (_dir, path) = write_temp(wf, "wf");
        workflow(&argv(&[&path, "--temperature", "12"])).unwrap();
        workflow(&argv(&[&path, "--temperature", "25"])).unwrap();
    }

    #[test]
    fn workflow_reports_parse_errors() {
        let (_dir, path) = write_temp("workflow \"w\"\n  bogus\nend\n", "wf");
        let err = workflow(&argv(&[&path])).unwrap_err();
        assert!(err.contains("line 2"));
    }
}

/// `imcf schedule <loads-file>` — place deferrable loads into green hours.
///
/// Load file format (one load per line):
/// ```text
/// # name | kWh per hour | duration hours | release..deadline
/// EV charge | 3.7 | 3 | 0..30
/// dishwasher | 1.1 | 1 | 8..22
/// ```
pub fn schedule(argv: &[String]) -> Result<(), String> {
    use imcf_core::deferrable::{schedule_loads, DeferrableLoad, ScheduleContext};

    let spec = ArgSpec {
        options: &["horizon", "headroom"],
        min_positional: 1,
        max_positional: 1,
    };
    let parsed = spec.parse(argv)?;
    let Some(path) = parsed.positional(0) else {
        return Err(String::from("missing <path> argument"));
    };
    let horizon = parsed.get_u64("horizon", 48)?;
    let headroom = parsed.get_f64("headroom", 4.0)?;

    let mut loads = Vec::new();
    for (idx, raw) in read_file(path)?.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(format!(
                "{path}:{}: expected `name | kwh/h | hours | release..deadline`",
                idx + 1
            ));
        }
        let kwh: f64 = fields[1]
            .parse()
            .map_err(|_| format!("{path}:{}: bad kWh `{}`", idx + 1, fields[1]))?;
        let hours: u64 = fields[2]
            .parse()
            .map_err(|_| format!("{path}:{}: bad duration `{}`", idx + 1, fields[2]))?;
        let (a, b) = fields[3]
            .split_once("..")
            .ok_or_else(|| format!("{path}:{}: bad window `{}`", idx + 1, fields[3]))?;
        let release: u64 = a
            .parse()
            .map_err(|_| format!("{path}:{}: bad release `{a}`", idx + 1))?;
        let deadline: u64 = b
            .parse()
            .map_err(|_| format!("{path}:{}: bad deadline `{b}`", idx + 1))?;
        if hours == 0 || release + hours > deadline {
            return Err(format!(
                "{path}:{}: window {release}..{deadline} cannot fit {hours} h",
                idx + 1
            ));
        }
        loads.push(DeferrableLoad::new(
            fields[0], kwh, hours, release, deadline,
        ));
    }
    if loads.is_empty() {
        return Err("no loads in file".to_string());
    }

    // Night-cheap CO₂ cost curve, uniform headroom.
    let cost: Vec<f64> = (0..horizon)
        .map(|h| match h % 24 {
            0..=5 => 0.15,
            18..=21 => 0.9,
            _ => 0.45,
        })
        .collect();
    let mut ctx = ScheduleContext {
        headroom_kwh: vec![headroom; horizon as usize],
        cost_per_kwh: cost,
    };
    let placements = schedule_loads(&mut ctx, &loads).map_err(|e| e.to_string())?;
    println!(
        "{:<24} {:>8} {:>8} {:>10}",
        "load", "start", "hours", "cost"
    );
    for (load, p) in loads.iter().zip(&placements) {
        println!(
            "{:<24} {:>5}:00 {:>8} {:>10.2}",
            p.name,
            p.start % 24,
            load.duration_hours,
            p.cost
        );
    }
    Ok(())
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use std::io::Write;

    fn write_temp(content: &str) -> (tempfile::TempDir, String) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("loads.txt");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        (dir, path.to_string_lossy().into_owned())
    }

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn schedules_a_load_file() {
        let (_d, path) =
            write_temp("# loads\nEV | 3.0 | 3 | 0..30\ndishwasher | 1.1 | 1 | 8..22\n");
        schedule(&argv(&[&path])).unwrap();
    }

    #[test]
    fn rejects_malformed_rows() {
        let (_d, path) = write_temp("just nonsense\n");
        assert!(schedule(&argv(&[&path])).unwrap_err().contains("expected"));
        let (_d2, path2) = write_temp("EV | 3.0 | 9 | 0..5\n");
        assert!(schedule(&argv(&[&path2]))
            .unwrap_err()
            .contains("cannot fit"));
        let (_d3, path3) = write_temp("# only comments\n");
        assert!(schedule(&argv(&[&path3])).unwrap_err().contains("no loads"));
    }

    #[test]
    fn infeasible_headroom_reports() {
        let (_d, path) = write_temp("EV | 9.0 | 2 | 0..10\n");
        let err = schedule(&argv(&[&path, "--headroom", "1.0"])).unwrap_err();
        assert!(err.contains("EV"));
    }
}

/// `imcf chaos` — run a deterministic fault-injection soak and print the
/// outcome as JSON. The same engine backs the `chaos_soak` bench; this
/// entry point runs a single cell so operators can probe survivability
/// at a chosen fault rate (and optionally keep the journal on disk to
/// inspect the torn-tail recovery path).
pub fn chaos(argv: &[String]) -> Result<(), String> {
    // `--crash` switches to the kill-at-crashpoint soak: a child process
    // is killed mid-write at seeded crashpoints and must recover with
    // exactly-once actuation (see `crash_commands`).
    if let Some(i) = argv.iter().position(|a| a == "--crash") {
        let mut rest = argv.to_vec();
        rest.remove(i);
        return crate::crash_commands::crash_soak(&rest);
    }
    let spec = ArgSpec {
        options: &[
            "rate",
            "store-rate",
            "ticks",
            "seed",
            "zones",
            "outage-rate",
            "journal",
            "trace",
        ],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let rate = parsed.get_f64("rate", 0.1)?;
    let store_rate = parsed.get_f64("store-rate", rate / 2.0)?;
    let ticks = parsed.get_u64("ticks", 168)?;
    let seed = parsed.get_u64("seed", 0)?;
    let zones = parsed.get_u64("zones", 2)? as usize;
    let outage_rate = parsed.get_f64("outage-rate", 0.0)?;
    let journal = parsed.get("journal").map(std::path::PathBuf::from);
    let trace_path = parsed.get("trace").map(std::path::PathBuf::from);
    if !(0.0..=1.0).contains(&rate) || !(0.0..=1.0).contains(&store_rate) {
        return Err(String::from("fault rates must be within 0.0..=1.0"));
    }
    if ticks == 0 || zones == 0 {
        return Err(String::from("--ticks and --zones must be at least 1"));
    }

    // Arm the flight recorder before the soak so every tick's causal
    // record is captured; the panic hook dumps mid-flight traces even if
    // the run dies.
    if trace_path.is_some() {
        imcf_telemetry::trace::recorder().set_enabled(true);
        imcf_telemetry::trace::install_panic_hook();
    }

    let config = imcf_controller::SoakConfig {
        seed,
        ticks,
        zones,
        plan: imcf_chaos::FaultPlan::commands(seed, rate).with_store_faults(store_rate),
        outage_rate_per_week: outage_rate,
        ..imcf_controller::SoakConfig::default()
    };
    let outcome = imcf_controller::run_soak(&config, journal.as_deref());
    let json = serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?;
    println!("{json}");

    if let Some(path) = &trace_path {
        let recorder = imcf_telemetry::trace::recorder();
        std::fs::write(path, recorder.chrome_trace_json())
            .map_err(|e| format!("cannot write trace to `{}`: {e}", path.display()))?;
        eprintln!(
            "trace: wrote {} retained trace tree(s) to {} \
             (load in Perfetto, or run `imcf trace explain <thing-uid> --input {}`)",
            recorder.summaries().len(),
            path.display(),
            path.display()
        );
    }
    Ok(())
}

/// `imcf trace` — inspect flight-recorder dumps. The only verb today is
/// `explain`, which renders the causal chain behind a command in plain
/// text from a Chrome-trace JSON file (`imcf chaos --trace <path>`, a
/// flight-recorder dump, or `GET /rest/traces?id=<trace>`).
pub fn trace(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("explain") => trace_explain(&argv[1..]),
        Some(other) => Err(format!(
            "unknown trace subcommand `{other}` (try `explain`)"
        )),
        None => Err(String::from(
            "usage: imcf trace explain <command-id> --input <trace.json>",
        )),
    }
}

/// One parsed Chrome-trace event, borrowed from the JSON document.
struct TraceEvent<'a> {
    name: &'a str,
    ph: &'a str,
    ts: f64,
    trace: &'a str,
    span: Option<&'a str>,
    parent: Option<&'a str>,
    attrs: Vec<(&'a str, &'a str)>,
}

fn parse_trace_events(doc: &serde_json::Value) -> Result<Vec<TraceEvent<'_>>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("not a Chrome-trace file: no `traceEvents` array")?;
    let mut out = Vec::with_capacity(events.len());
    for event in events {
        let field = |key: &str| event.get(key).and_then(|v| v.as_str());
        let Some(args) = event.get("args") else {
            continue;
        };
        let arg = |key: &str| args.get(key).and_then(|v| v.as_str());
        let (Some(name), Some(ph), Some(trace)) = (field("name"), field("ph"), arg("trace")) else {
            continue;
        };
        let ts = match event.get("ts") {
            Some(serde_json::Value::Number(n)) => n.as_f64(),
            _ => 0.0,
        };
        let attrs = args
            .as_object()
            .map(|fields| {
                fields
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "trace" | "span" | "parent"))
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.as_str(), s)))
                    .collect()
            })
            .unwrap_or_default();
        out.push(TraceEvent {
            name,
            ph,
            ts,
            trace,
            span: arg("span"),
            parent: arg("parent"),
            attrs,
        });
    }
    Ok(out)
}

fn render_attrs(attrs: &[(&str, &str)]) -> String {
    attrs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// `imcf trace explain <command-id> --input <trace.json>`: finds every
/// event referencing the command (a thing UID like `imcf:hvac:zone0`, or
/// any attribute value) and prints its causal chain — root span down to
/// the referencing event — in plain text.
fn trace_explain(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &["input"],
        min_positional: 1,
        max_positional: 1,
    };
    let parsed = spec.parse(argv)?;
    let needle = parsed
        .positional(0)
        .ok_or("missing <command-id> (a thing UID, e.g. `imcf:hvac:zone0`)")?;
    let input = parsed
        .get("input")
        .ok_or("option `--input <trace.json>` is required")?;
    let text = read_file(input)?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{input}: invalid JSON: {e}"))?;
    let events = parse_trace_events(&doc)?;

    let matches: Vec<&TraceEvent<'_>> = events
        .iter()
        .filter(|e| e.attrs.iter().any(|(_, v)| v.contains(needle)))
        .collect();
    if matches.is_empty() {
        return Err(format!(
            "no events referencing `{needle}` in `{input}` \
             ({} events scanned)",
            events.len()
        ));
    }

    println!(
        "{} event(s) referencing `{needle}` in `{input}`:\n",
        matches.len()
    );
    for hit in matches {
        // The causal chain: walk parent links from the referencing event
        // (or its enclosing span) up to the trace root, then print
        // root-first.
        let spans_of_trace = |span: Option<&str>| -> Option<&TraceEvent<'_>> {
            let id = span?;
            events
                .iter()
                .find(|e| e.trace == hit.trace && e.ph == "X" && e.span == Some(id))
        };
        let mut chain: Vec<&TraceEvent<'_>> = Vec::new();
        let mut cursor = hit.span;
        let mut hops = 0;
        while let Some(span_event) = spans_of_trace(cursor) {
            // A malformed file could cycle; spans nest at most as deep as
            // the event count.
            hops += 1;
            if hops > events.len() {
                break;
            }
            chain.push(span_event);
            cursor = span_event.parent;
        }
        chain.reverse();

        let label = chain
            .first()
            .and_then(|root| root.attrs.iter().find(|(k, _)| *k == "label"))
            .map(|(_, v)| *v)
            .unwrap_or("?");
        println!("trace {} ({label}):", hit.trace);
        let mut depth = 0;
        for span_event in &chain {
            let is_hit = span_event.span == hit.span && hit.ph == "X";
            println!(
                "  {:indent$}{}{} [t{}] {}{}",
                "",
                if depth == 0 { "" } else { "\u{2514} " },
                span_event.name,
                span_event.ts,
                render_attrs(&span_event.attrs),
                if is_hit { "   <== match" } else { "" },
                indent = depth * 2
            );
            depth += 1;
        }
        if hit.ph != "X" {
            println!(
                "  {:indent$}* {} [t{}] {}   <== match",
                "",
                hit.name,
                hit.ts,
                render_attrs(&hit.attrs),
                indent = depth * 2
            );
        }
        println!();
    }
    Ok(())
}

#[cfg(test)]
mod chaos_tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn runs_a_default_soak() {
        chaos(&argv(&["--ticks", "24", "--zones", "1"])).unwrap();
    }

    #[test]
    fn rejects_out_of_range_rates() {
        assert!(chaos(&argv(&["--rate", "1.5"]))
            .unwrap_err()
            .contains("0.0..=1.0"));
        assert!(chaos(&argv(&["--ticks", "0"]))
            .unwrap_err()
            .contains("at least 1"));
    }

    /// End-to-end: `chaos --trace` writes a Chrome-trace file that
    /// `trace explain` can render a causal chain from.
    #[test]
    fn chaos_trace_round_trips_through_explain() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("chaos.trace.json");
        let path_str = path.to_str().unwrap().to_string();
        chaos(&argv(&[
            "--ticks", "12", "--zones", "1", "--rate", "1.0", "--trace", &path_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"), "Chrome-trace envelope");
        assert!(
            text.contains("imcf:hvac:zone0"),
            "names the device:\n{text}"
        );

        trace(&argv(&["explain", "imcf:hvac:zone0", "--input", &path_str])).unwrap();

        let err = trace(&argv(&["explain", "no:such:thing", "--input", &path_str])).unwrap_err();
        assert!(err.contains("no events referencing"), "err: {err}");
    }

    #[test]
    fn trace_usage_errors() {
        assert!(trace(&argv(&[])).unwrap_err().contains("usage"));
        assert!(trace(&argv(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown trace subcommand"));
        assert!(trace(&argv(&["explain", "imcf:hvac:zone0"]))
            .unwrap_err()
            .contains("--input"));
    }

    #[test]
    fn writes_a_journal_when_asked() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("chaos");
        chaos(&argv(&[
            "--ticks",
            "24",
            "--zones",
            "1",
            "--rate",
            "0.2",
            "--journal",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let has_segment = imcf_store::segment::segment_files(&path, "soak_journal")
            .map(|files| !files.is_empty())
            .unwrap_or(false);
        assert!(path.join("soak_journal.snap").exists() || has_segment);
    }
}
