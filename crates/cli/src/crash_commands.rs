//! `imcf chaos --crash` — the kill-at-crashpoint soak.
//!
//! The parent process runs the recoverable controller workload in a child
//! process (`imcf chaos-child`, a hidden subcommand), arms one seeded
//! crashpoint per cycle through the `IMCF_CRASHPOINT` environment
//! variable, and lets the child die mid-write. After every kill it
//! restarts the child on the same store directory and audits the command
//! journal; after every completed run it compares the recovered final
//! state against an uncrashed in-process reference at the same seed.
//!
//! Invariants asserted across the whole soak (the run fails otherwise):
//!
//! * **No double actuation** — the journal never holds two delivered
//!   records for one command id, no matter where the kill landed.
//! * **No lost ack** — a command id seen as delivered in any audit is
//!   still delivered in every later audit of the same run.
//! * **Byte-identical recovery** — a run that was killed and restored any
//!   number of times ends in a [`StateDigest`] that serializes to the
//!   same bytes as an uncrashed run at the same seed.
//!
//! [`StateDigest`]: imcf_controller::StateDigest

use crate::args::ArgSpec;
use imcf_chaos::crashpoint::{self, Crashpoint};
use imcf_chaos::FaultPlan;
use imcf_controller::{
    audit_journal, open_or_restore, run_complete, run_recoverable, state_digest, RecoveryConfig,
    StateDigest,
};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// The workload parameters one soak (and its reference runs) share.
#[derive(Debug, Clone, Copy)]
struct SoakParams {
    ticks: u64,
    zones: usize,
    checkpoint_every: u64,
    rate: f64,
}

/// The recoverable-run config for one run seed. Parent and child build
/// their configs through this single constructor so the reference run,
/// the restored runs, and the digest checks all describe the same
/// workload.
fn recovery_config(seed: u64, params: &SoakParams) -> RecoveryConfig {
    RecoveryConfig {
        seed,
        ticks: params.ticks,
        zones: params.zones,
        checkpoint_every: params.checkpoint_every,
        plan: FaultPlan::commands(seed, params.rate),
        ..RecoveryConfig::default()
    }
}

/// The seed of the `index`-th run in a soak (runs after the first start
/// fresh once the previous run completed). Golden-ratio stride keeps the
/// derived seeds well separated while staying pure in `(base, index)`.
fn run_seed(base: u64, index: u64) -> u64 {
    base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn zone_names(zones: usize) -> Vec<String> {
    (0..zones).map(|z| format!("zone{z}")).collect()
}

/// Serialized digest bytes — the comparison unit for "byte-identical".
fn digest_bytes(digest: &StateDigest) -> Result<String, String> {
    serde_json::to_string(digest).map_err(|e| format!("cannot serialize digest: {e}"))
}

/// The final-state digest of the (completed) store in `dir`, computed by
/// restoring from the terminal checkpoint and replaying the journal —
/// i.e. through the same recovery machinery the soak is testing.
fn digest_of_store(config: &RecoveryConfig, dir: &Path) -> Result<StateDigest, String> {
    let opened = open_or_restore(config, dir)
        .map_err(|e| format!("cannot reopen completed store `{}`: {e}", dir.display()))?;
    Ok(state_digest(
        &opened.controller,
        &zone_names(config.zones),
        config.ticks,
    ))
}

/// Runs the workload uncrashed, in-process, in a scratch directory, and
/// returns its digest — the byte-exact reference for a crashed run at the
/// same seed.
fn reference_digest(config: &RecoveryConfig, scratch: &Path) -> Result<StateDigest, String> {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch)
        .map_err(|e| format!("cannot create reference dir `{}`: {e}", scratch.display()))?;
    let outcome = run_recoverable(config, scratch)
        .map_err(|e| format!("uncrashed reference run failed: {e}"))?;
    let _ = std::fs::remove_dir_all(scratch);
    Ok(outcome.digest)
}

fn wipe_and_create(dir: &Path) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create soak dir `{}`: {e}", dir.display()))
}

/// The JSON invariant report `imcf chaos --crash` writes.
#[derive(Debug, Serialize)]
struct CrashSoakReport {
    seed: u64,
    ticks: u64,
    zones: usize,
    checkpoint_every: u64,
    fault_rate: f64,
    max_occurrence: u64,
    /// Kill/restart cycles asked for and observed.
    kills_target: u64,
    kills: u64,
    /// Child spawns (kills + runs that outran their armed crashpoint).
    spawns: u64,
    /// Workload runs driven to their terminal checkpoint and verified.
    runs_completed: u64,
    /// Kills per crashpoint site.
    site_kills: BTreeMap<String, u64>,
    /// Invariant counters — all must be zero for the soak to pass.
    duplicate_deliveries: u64,
    lost_acks: u64,
    digest_mismatches: u64,
    /// Children that exited cleanly without a terminal checkpoint (a
    /// workload bug if ever nonzero).
    clean_exits_without_completion: u64,
    pass: bool,
}

/// Per-run audit state: every command id acknowledged so far must stay
/// delivered in every later audit of the same run.
#[derive(Default)]
struct RunLedger {
    acked: BTreeSet<u64>,
}

impl RunLedger {
    /// Folds one journal audit in; returns acks lost since the last one.
    fn observe(&mut self, delivered_ids: &[u64]) -> u64 {
        let now: BTreeSet<u64> = delivered_ids.iter().copied().collect();
        let lost = self.acked.difference(&now).count() as u64;
        self.acked = now;
        lost
    }
}

/// `imcf chaos --crash` — see the module docs. `argv` is the chaos argv
/// with the `--crash` token already removed.
pub fn crash_soak(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &[
            "kills",
            "ticks",
            "seed",
            "zones",
            "checkpoint-every",
            "rate",
            "max-occurrence",
            "dir",
            "report",
        ],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let kills_target = parsed.get_u64("kills", 50)?.max(1);
    let seed = parsed.get_u64("seed", 1)?;
    let max_occurrence = parsed.get_u64("max-occurrence", 12)?.max(1);
    let params = SoakParams {
        ticks: parsed.get_u64("ticks", 72)?.max(1),
        zones: parsed.get_u64("zones", 2)?.max(1) as usize,
        checkpoint_every: parsed.get_u64("checkpoint-every", 8)?,
        rate: parsed.get_f64("rate", 0.2)?,
    };
    if !(0.0..=1.0).contains(&params.rate) {
        return Err(String::from("--rate must be within 0.0..=1.0"));
    }
    let workdir = match parsed.get("dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("imcf-crash-soak-{}", std::process::id())),
    };
    let scratch = workdir.join("reference");
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the imcf binary to respawn: {e}"))?;

    println!(
        "crash soak: {kills_target} kill(s) over {} tick × {} zone runs \
         (seed {seed}, checkpoint every {}, fault rate {}, dir {})",
        params.ticks,
        params.zones,
        params.checkpoint_every,
        params.rate,
        workdir.display()
    );
    wipe_and_create(&workdir)?;

    let mut report = CrashSoakReport {
        seed,
        ticks: params.ticks,
        zones: params.zones,
        checkpoint_every: params.checkpoint_every,
        fault_rate: params.rate,
        max_occurrence,
        kills_target,
        kills: 0,
        spawns: 0,
        runs_completed: 0,
        site_kills: BTreeMap::new(),
        duplicate_deliveries: 0,
        lost_acks: 0,
        digest_mismatches: 0,
        clean_exits_without_completion: 0,
        pass: false,
    };
    let mut ledger = RunLedger::default();
    let mut run_index = 0u64;
    let mut cycle = 0u64;
    // A picked crashpoint whose occurrence the run never reaches cannot
    // kill, so some cycles complete the run instead. Well before this
    // bound the soak has either met its kill target or demonstrated that
    // nothing ever dies (also worth failing loudly on).
    let max_cycles = kills_target.saturating_mul(40).saturating_add(200);

    while report.kills < kills_target {
        cycle += 1;
        if cycle > max_cycles {
            return Err(format!(
                "crash soak stalled: {cycle} cycles produced only {} of {kills_target} kills",
                report.kills
            ));
        }
        let seed_now = run_seed(seed, run_index);
        let point = crashpoint::pick(seed, cycle, max_occurrence);
        let status = spawn_child(&exe, &workdir, seed_now, &params, Some(&point))?;
        report.spawns += 1;

        let completed = run_complete(&workdir, params.ticks)
            .map_err(|e| format!("cannot inspect soak store: {e}"))?;
        if !status.success() {
            // The armed crashpoint fired: audit the half-written store
            // exactly as the next incarnation will see it.
            report.kills += 1;
            *report.site_kills.entry(point.site.clone()).or_insert(0) += 1;
            check_journal(&workdir, &mut ledger, &mut report)?;
        } else if !completed {
            report.clean_exits_without_completion += 1;
        }
        if completed {
            finish_run(
                &workdir,
                &scratch,
                seed_now,
                &params,
                &mut ledger,
                &mut report,
            )?;
            run_index += 1;
            wipe_and_create(&workdir)?;
        }
    }

    // The kill target is met mid-run: drive the final, many-times-killed
    // run to completion in-process (no crashpoint armed in the parent)
    // and hold it to the same digest invariant.
    if !run_complete(&workdir, params.ticks)
        .map_err(|e| format!("cannot inspect soak store: {e}"))?
    {
        let seed_now = run_seed(seed, run_index);
        run_recoverable(&recovery_config(seed_now, &params), &workdir)
            .map_err(|e| format!("final resume failed: {e}"))?;
        finish_run(
            &workdir,
            &scratch,
            seed_now,
            &params,
            &mut ledger,
            &mut report,
        )?;
    }
    let _ = std::fs::remove_dir_all(&workdir);

    report.pass = report.kills >= kills_target
        && report.runs_completed > 0
        && report.duplicate_deliveries == 0
        && report.lost_acks == 0
        && report.digest_mismatches == 0
        && report.clean_exits_without_completion == 0;

    println!(
        "crash soak: {} kills over {} spawns, {} run(s) completed and verified",
        report.kills, report.spawns, report.runs_completed
    );
    for (site, kills) in &report.site_kills {
        println!("  {site}: {kills} kill(s)");
    }
    println!(
        "  invariants: duplicate deliveries {}, lost acks {}, digest mismatches {} — {}",
        report.duplicate_deliveries,
        report.lost_acks,
        report.digest_mismatches,
        if report.pass { "PASS" } else { "FAIL" }
    );

    let out_path = match parsed.get("report") {
        Some(p) => PathBuf::from(p),
        None => {
            let dir =
                std::env::var("IMCF_OUT").unwrap_or_else(|_| String::from("target/experiments"));
            PathBuf::from(dir).join("crash_soak.json")
        }
    };
    if let Some(dir) = out_path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
    }
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&out_path, json)
        .map_err(|e| format!("cannot write report to `{}`: {e}", out_path.display()))?;
    println!("  report: {}", out_path.display());

    if report.pass {
        Ok(())
    } else {
        Err(String::from(
            "crash soak failed: an exactly-once or determinism invariant was violated \
             (see the report JSON)",
        ))
    }
}

/// Spawns one child incarnation on `dir`, optionally with a crashpoint
/// armed, and waits for it.
fn spawn_child(
    exe: &Path,
    dir: &Path,
    seed: u64,
    params: &SoakParams,
    point: Option<&Crashpoint>,
) -> Result<std::process::ExitStatus, String> {
    let mut command = Command::new(exe);
    command
        .arg("chaos-child")
        .args(["--dir".into(), dir.display().to_string()])
        .args(["--seed".into(), seed.to_string()])
        .args(["--ticks".into(), params.ticks.to_string()])
        .args(["--zones".into(), params.zones.to_string()])
        .args([
            "--checkpoint-every".into(),
            params.checkpoint_every.to_string(),
        ])
        .args(["--rate".into(), params.rate.to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        // The parent's environment must not leak an armed crashpoint into
        // cycles that want the child to run free.
        .env_remove(crashpoint::CRASHPOINT_ENV);
    if let Some(point) = point {
        command.env(crashpoint::CRASHPOINT_ENV, point.env_value());
    }
    command
        .status()
        .map_err(|e| format!("cannot spawn `{} chaos-child`: {e}", exe.display()))
}

/// Audits the journal in `dir` and folds the exactly-once counters into
/// the report.
fn check_journal(
    dir: &Path,
    ledger: &mut RunLedger,
    report: &mut CrashSoakReport,
) -> Result<(), String> {
    let audit = audit_journal(dir).map_err(|e| format!("journal audit failed: {e}"))?;
    report.duplicate_deliveries += audit.duplicate_deliveries;
    report.lost_acks += ledger.observe(&audit.delivered_ids);
    Ok(())
}

/// A run reached its terminal checkpoint: audit it one last time, compare
/// its recovered digest against the uncrashed reference, and reset the
/// per-run ledger for the next run.
fn finish_run(
    dir: &Path,
    scratch: &Path,
    seed: u64,
    params: &SoakParams,
    ledger: &mut RunLedger,
    report: &mut CrashSoakReport,
) -> Result<(), String> {
    check_journal(dir, ledger, report)?;
    let config = recovery_config(seed, params);
    let recovered = digest_bytes(&digest_of_store(&config, dir)?)?;
    let reference = digest_bytes(&reference_digest(&config, scratch)?)?;
    if recovered != reference {
        report.digest_mismatches += 1;
        eprintln!(
            "digest mismatch at seed {seed}:\n  crashed run: {recovered}\n  reference:   {reference}"
        );
    }
    report.runs_completed += 1;
    *ledger = RunLedger::default();
    Ok(())
}

/// `imcf chaos-child` — the hidden child mode of the crash soak: arm the
/// crashpoint named by `IMCF_CRASHPOINT` (if any), then run (or resume)
/// the recoverable workload on `--dir`. Prints the outcome JSON when it
/// survives to the terminal checkpoint.
pub fn crash_child(argv: &[String]) -> Result<(), String> {
    let spec = ArgSpec {
        options: &["dir", "seed", "ticks", "zones", "checkpoint-every", "rate"],
        min_positional: 0,
        max_positional: 0,
    };
    let parsed = spec.parse(argv)?;
    let dir = PathBuf::from(
        parsed
            .get("dir")
            .ok_or("chaos-child requires --dir <store directory>")?,
    );
    let seed = parsed.get_u64("seed", 1)?;
    let params = SoakParams {
        ticks: parsed.get_u64("ticks", 72)?.max(1),
        zones: parsed.get_u64("zones", 2)?.max(1) as usize,
        checkpoint_every: parsed.get_u64("checkpoint-every", 8)?,
        rate: parsed.get_f64("rate", 0.2)?,
    };
    let armed = crashpoint::arm_from_env();
    let outcome = run_recoverable(&recovery_config(seed, &params), &dir)
        .map_err(|e| format!("recoverable run failed: {e}"))?;
    // Reaching this line means the armed occurrence was never hit (or no
    // crashpoint was armed): report the completed run.
    let _ = armed;
    let json = serde_json::to_string(&outcome).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}
