//! Dependency-free `--key value` argument parsing.

use std::collections::BTreeMap;

/// Parsed command arguments: positional values plus `--key value` options.
#[derive(Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Declares what a command accepts and parses argv against it.
pub struct ArgSpec {
    /// Option names accepted (without the `--`).
    pub options: &'static [&'static str],
    /// Minimum positional argument count.
    pub min_positional: usize,
    /// Maximum positional argument count.
    pub max_positional: usize,
}

impl ArgSpec {
    /// Parses argv; rejects unknown options and bad arity.
    pub fn parse(&self, argv: &[String]) -> Result<Parsed, String> {
        let mut parsed = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if name == "help" {
                    return Err("help requested".to_string());
                }
                if !self.options.contains(&name) {
                    return Err(format!(
                        "unknown option `--{name}` (accepted: {:?})",
                        self.options
                    ));
                }
                let Some(value) = argv.get(i + 1) else {
                    return Err(format!("option `--{name}` needs a value"));
                };
                parsed.options.insert(name.to_string(), value.clone());
                i += 2;
            } else {
                parsed.positional.push(a.clone());
                i += 1;
            }
        }
        if parsed.positional.len() < self.min_positional {
            return Err(format!(
                "expected at least {} positional argument(s), found {}",
                self.min_positional,
                parsed.positional.len()
            ));
        }
        if parsed.positional.len() > self.max_positional {
            return Err(format!(
                "expected at most {} positional argument(s), found {}",
                self.max_positional,
                parsed.positional.len()
            ));
        }
        Ok(parsed)
    }
}

impl Parsed {
    /// The nth positional argument.
    pub fn positional(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A numeric option with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("`--{name}` expects a number, found `{v}`")),
        }
    }

    /// An integer option with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("`--{name}` expects an integer, found `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    const SPEC: ArgSpec = ArgSpec {
        options: &["seed", "months"],
        min_positional: 0,
        max_positional: 1,
    };

    #[test]
    fn parses_mixed_args() {
        let p = SPEC
            .parse(&argv(&["file.mrt", "--seed", "7", "--months", "3"]))
            .unwrap();
        assert_eq!(p.positional(0), Some("file.mrt"));
        assert_eq!(p.get_u64("seed", 0).unwrap(), 7);
        assert_eq!(p.get_u64("months", 12).unwrap(), 3);
        assert_eq!(p.get_u64("absent", 42).unwrap(), 42);
    }

    #[test]
    fn rejects_unknown_option() {
        let e = SPEC.parse(&argv(&["--nope", "1"])).unwrap_err();
        assert!(e.contains("unknown option"));
    }

    #[test]
    fn rejects_missing_value() {
        let e = SPEC.parse(&argv(&["--seed"])).unwrap_err();
        assert!(e.contains("needs a value"));
    }

    #[test]
    fn rejects_bad_arity() {
        let e = SPEC.parse(&argv(&["a", "b"])).unwrap_err();
        assert!(e.contains("at most 1"));
        let strict = ArgSpec {
            options: &[],
            min_positional: 1,
            max_positional: 1,
        };
        let e = strict.parse(&argv(&[])).unwrap_err();
        assert!(e.contains("at least 1"));
    }

    #[test]
    fn rejects_bad_number() {
        let p = SPEC.parse(&argv(&["--seed", "abc"])).unwrap();
        assert!(p.get_u64("seed", 0).is_err());
        assert!(p.get_f64("seed", 0.0).is_err());
    }
}
