//! End-to-end: `imcf serve` with the obs sampler on, driven by
//! `imcf doctor` and `imcf top` over the wire.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

fn imcf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_imcf"))
}

/// Spawns `imcf serve --port 0` and scrapes the ephemeral address off
/// its first stdout line. Returns the child plus the `host:port`.
fn spawn_serve(extra: &[&str]) -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut child = imcf()
        .args(["serve", "--port", "0", "--zones", "1", "--tick-ms", "20"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve spawns");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("serve prints its address");
    let addr = line
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in serve banner")
        .to_string();
    (child, reader, addr)
}

fn shutdown(mut child: Child) {
    if let Some(stdin) = child.stdin.as_mut() {
        let _ = stdin.write_all(b"quit\n");
    }
    let _ = child.wait();
}

#[test]
fn doctor_bundles_the_obs_surfaces_and_asserts_on_them() {
    let (child, _reader, addr) = spawn_serve(&["--demo-alert", "true"]);
    // Let the 20 ms sampler take enough ticks for the demo breaker storm
    // to build series and fire the breaker.open.storm rule.
    std::thread::sleep(std::time::Duration::from_millis(600));

    let dir = tempfile::tempdir().expect("tempdir");
    let bundle_path = dir.path().join("doctor.json");
    let out = imcf()
        .args([
            "doctor",
            "--addr",
            &addr,
            "--out",
            bundle_path.to_str().expect("utf8 path"),
            "--require-series",
            "breaker.open",
            "--require-alert",
            "breaker.open.storm",
        ])
        .output()
        .expect("doctor runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "doctor failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("checks:  all passed"), "stdout: {stdout}");

    let bundle: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&bundle_path).expect("bundle written"))
            .expect("bundle is valid JSON");
    assert_eq!(
        bundle
            .get("healthz")
            .and_then(|v| v.get("status"))
            .and_then(|v| v.as_str()),
        Some("ok")
    );
    for key in ["metrics", "series", "alerts", "traces"] {
        assert!(bundle.get(key).is_some(), "bundle carries `{key}`");
    }

    // A missing requirement must flip the exit code for CI use.
    let out = imcf()
        .args([
            "doctor",
            "--addr",
            &addr,
            "--out",
            bundle_path.to_str().expect("utf8 path"),
            "--require-series",
            "no.such.series",
        ])
        .output()
        .expect("doctor runs");
    assert!(!out.status.success(), "missing series must fail the check");

    shutdown(child);
}

#[test]
fn top_renders_one_dashboard_frame() {
    let (child, _reader, addr) = spawn_serve(&[]);
    std::thread::sleep(std::time::Duration::from_millis(300));

    let out = imcf()
        .args([
            "top",
            "--addr",
            &addr,
            "--iterations",
            "1",
            "--plain",
            "true",
        ])
        .output()
        .expect("top runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "top failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("imcf top — tick"), "stdout: {stdout}");
    assert!(stdout.contains("ALERTS"), "stdout: {stdout}");
    assert!(stdout.contains("breaker.open.storm"), "stdout: {stdout}");
    assert!(stdout.contains("SERIES"), "stdout: {stdout}");

    shutdown(child);
}
