//! End-to-end tests driving the compiled `imcf` binary.

use std::io::Write;
use std::process::Command;

fn imcf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_imcf"))
}

fn write_temp(content: &str, name: &str) -> (tempfile::TempDir, String) {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    (dir, path.to_string_lossy().into_owned())
}

const MRT: &str = "\
Night Heat | 01:00 - 07:00 | Set Temperature | 25 | owner=father
Morning Lights | 04:00 - 09:00 | Set Light | 40 | owner=mother
Budget | for 1 month | Set kWh Limit | 400
";

#[test]
fn help_prints_usage() {
    let out = imcf().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("imcf validate"));
    assert!(text.contains("imcf plan"));
}

#[test]
fn no_args_fails_with_usage() {
    let out = imcf().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = imcf().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn validate_clean_table() {
    let (_dir, path) = write_temp(MRT, "family.mrt");
    let out = imcf().args(["validate", &path]).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 rules"));
    assert!(text.contains("no conflicts"));
}

#[test]
fn validate_infeasible_table_exits_nonzero() {
    let (_dir, path) = write_temp(
        "Freezer | 00:00 - 24:00 | Set Temperature | 4 | necessity\nBudget | for 1 month | Set kWh Limit | 1\n",
        "bad.mrt",
    );
    let out = imcf().args(["validate", &path]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsatisfiable"));
}

#[test]
fn plan_a_short_horizon() {
    let (_dir, path) = write_temp(MRT, "family.mrt");
    let out = imcf()
        .args(["plan", &path, "--days", "3", "--tau", "40", "--seed", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("F_CE"));
    assert!(text.contains("father"));
    assert!(text.contains("mother"));
}

#[test]
fn plan_with_jobs_is_deterministic_across_worker_counts() {
    let (_dir, path) = write_temp(MRT, "family.mrt");
    let run = |jobs: &str| {
        let out = imcf()
            .args([
                "plan", &path, "--days", "3", "--tau", "40", "--seed", "1", "--jobs", jobs,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(text.contains("no carry-over"));
        // Strip the wall-clock F_T line; everything else must match.
        text.lines()
            .filter(|l| !l.contains("F_T"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(run("1"), run("4"));
}

#[test]
fn plan_rejects_zero_jobs() {
    let (_dir, path) = write_temp(MRT, "family.mrt");
    let out = imcf()
        .args(["plan", &path, "--days", "1", "--jobs", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs must be at least 1"));
}

#[test]
fn workflow_dry_run() {
    let (_dir, path) = write_temp(
        "workflow \"w\"\n  if env.temperature < 18\n    actuate temperature 21\n  end\nend\n",
        "w.wf",
    );
    let cold = imcf()
        .args(["workflow", &path, "--temperature", "10"])
        .output()
        .unwrap();
    assert!(cold.status.success());
    assert!(String::from_utf8_lossy(&cold.stdout).contains("Set Temperature 21"));
    let warm = imcf()
        .args(["workflow", &path, "--temperature", "25"])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&warm.stdout).contains("no actuations"));
}

#[test]
fn schedule_places_loads() {
    let (_dir, path) = write_temp("EV | 3.0 | 3 | 0..30\n", "loads.txt");
    let out = imcf().args(["schedule", &path]).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("EV"));
}

#[test]
fn ecp_flat_profile() {
    let out = imcf().args(["ecp", "--dataset", "flat"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kWh/month"));
    assert!(text.contains("total"));
}
