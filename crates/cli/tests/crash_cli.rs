//! End-to-end test of `imcf chaos --crash`: the real binary respawning
//! itself as `chaos-child`, dying at armed crashpoints, and holding the
//! exactly-once invariants across kill/restart cycles.

use std::process::Command;

#[test]
fn crash_soak_passes_and_writes_the_invariant_report() {
    let dir = tempfile::tempdir().expect("tempdir");
    let soak_dir = dir.path().join("soak");
    let report_path = dir.path().join("crash_soak.json");

    let output = Command::new(env!("CARGO_BIN_EXE_imcf"))
        .args([
            "chaos",
            "--crash",
            "--kills",
            "5",
            "--ticks",
            "36",
            "--seed",
            "11",
            "--max-occurrence",
            "8",
        ])
        .args(["--dir".into(), soak_dir.display().to_string()])
        .args(["--report".into(), report_path.display().to_string()])
        .output()
        .expect("run imcf chaos --crash");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "crash soak must pass:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("PASS"), "verdict missing: {stdout}");

    // The invariant report is machine-checkable: kills happened, runs
    // were verified, and every violation counter reads zero.
    let report = std::fs::read_to_string(&report_path).expect("report JSON written");
    for must in [
        "\"kills\": 5",
        "\"duplicate_deliveries\": 0",
        "\"lost_acks\": 0",
        "\"digest_mismatches\": 0",
        "\"pass\": true",
    ] {
        assert!(report.contains(must), "report lacks `{must}`:\n{report}");
    }

    // The soak cleans its working store up after itself.
    assert!(!soak_dir.exists(), "soak dir must be removed on success");
}

#[test]
fn crash_child_without_a_crashpoint_completes_a_run() {
    let dir = tempfile::tempdir().expect("tempdir");
    let output = Command::new(env!("CARGO_BIN_EXE_imcf"))
        .args(["chaos-child", "--ticks", "12", "--seed", "3"])
        .args(["--dir".into(), dir.path().display().to_string()])
        .env_remove("IMCF_CRASHPOINT")
        .output()
        .expect("run imcf chaos-child");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("\"resumed_from\":null") || stdout.contains("\"resumed_from\": null"),
        "fresh run must not resume: {stdout}"
    );
    assert!(
        stdout.contains("\"digest\""),
        "outcome carries the digest: {stdout}"
    );
}
