//! The threaded HTTP/1.1 server: a bounded worker/acceptor model over
//! `std::net::TcpListener` fronting the controller's [`Router`].
//!
//! ## Threading model
//!
//! One acceptor thread owns the listener; a fixed pool of
//! [`NetConfig::max_connections`] worker threads each own at most one
//! connection at a time, so the worker count *is* the hard connection
//! cap. The acceptor hands accepted sockets to idle workers through a
//! small queue; when every worker is busy it answers `503 Service
//! Unavailable` with `Retry-After` inline and closes — saturation is an
//! explicit, cheap signal, never an unbounded backlog.
//!
//! ## Limits and timeouts
//!
//! Each connection gets `set_read_timeout`/`set_write_timeout` from the
//! config; the wire parser ([`crate::http`]) enforces request-line,
//! header, and body caps and maps violations to 4xx/5xx statuses. A
//! mid-request stall (slow loris) is answered `408` and cut; an idle
//! keep-alive connection that times out is closed silently. Keep-alive
//! connections are additionally capped at
//! [`NetConfig::max_requests_per_conn`] requests.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] stops accepting, then lets every worker
//! finish the request it is serving (and any request a client has
//! already started sending — workers never abandon a socket they are
//! mid-read on; the read timeout bounds the wait). Responses written
//! during shutdown carry `Connection: close`, so no in-flight response
//! is ever dropped.

use crate::http::{self, Limits, ParseError, Request};
use crate::limiter::{Admission, EdgeLimiter};
use imcf_controller::api::{Response, Router, JSON_CONTENT_TYPE};
use imcf_controller::cloud::RateLimit;
use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. Defaults are production-shaped; tests shrink the
/// timeouts.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads — and therefore the hard cap on concurrently
    /// accepted connections. Beyond it the acceptor answers 503.
    pub max_connections: usize,
    /// Per-read socket timeout (slow-loris bound, keep-alive idle bound).
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Requests served on one keep-alive connection before the server
    /// closes it (`Connection: close` on the final response).
    pub max_requests_per_conn: u32,
    /// Wire-parse limits (request line, headers, body).
    pub limits: Limits,
    /// Optional per-home token bucket enforced before dispatch (429).
    pub rate_limit: Option<RateLimit>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: String::from("127.0.0.1:0"),
            max_connections: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            limits: Limits::default(),
            rate_limit: None,
        }
    }
}

struct Shared {
    router: Arc<Router>,
    limiter: Option<EdgeLimiter>,
    config: NetConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Connections accepted and not yet finished (queued or in service).
    active: AtomicUsize,
}

/// A running server; dropping it without [`ServerHandle::shutdown`] leaks
/// the threads, so call shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, join
    /// every thread. Bounded by the read timeout (parked keep-alive
    /// connections are reaped when their next read times out).
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a wake-up
        // connection; it checks the flag before handling anything.
        drop(TcpStream::connect(self.addr));
        self.shared.work_ready.notify_all();
        let _ = self.acceptor.join();
        for worker in self.workers {
            self.shared.work_ready.notify_all();
            let _ = worker.join();
        }
    }
}

/// Binds and starts serving `router` under `config`.
pub fn serve(config: NetConfig, router: Arc<Router>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        limiter: config.rate_limit.map(EdgeLimiter::new),
        router,
        queue: Mutex::new(VecDeque::new()),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        config,
    });

    let workers = (0..shared.config.max_connections.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("imcf-net-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(String::from("imcf-net-acceptor"))
            .spawn(move || acceptor_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor,
        workers,
    })
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    let telemetry = imcf_telemetry::global();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            // Saturated: refuse inline from the acceptor so a busy pool
            // still answers promptly instead of queueing unboundedly.
            telemetry
                .counter_with("net.rejected", &[("reason", "saturated")])
                .inc();
            reject_saturated(stream, shared);
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        telemetry.gauge("net.connections").add(1.0);
        let mut queue = lock(&shared.queue);
        queue.push_back(stream);
        drop(queue);
        shared.work_ready.notify_one();
    }
}

fn reject_saturated(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let body = br#"{"error":"server saturated"}"#;
    let _ = write_wire(
        &mut stream,
        503,
        JSON_CONTENT_TYPE,
        &[("Retry-After", String::from("1"))],
        body,
        true,
    );
    imcf_telemetry::global()
        .counter_with("net.requests", &[("status", http::status_class(503))])
        .inc();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = match shared.work_ready.wait(queue) {
                    Ok(q) => q,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        serve_connection(stream, shared);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        imcf_telemetry::global().gauge("net.connections").add(-1.0);
    }
}

/// Locks a mutex, recovering from poison (a panicking worker must not
/// take the whole accept queue down with it).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let telemetry = imcf_telemetry::global();
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .and_then(|()| stream.set_write_timeout(Some(shared.config.write_timeout)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served = 0u32;
    loop {
        match http::read_request(&mut reader, &shared.config.limits) {
            Ok(request) => {
                served += 1;
                let response = respond(&request, shared);
                let closing = !request.keep_alive
                    || served >= shared.config.max_requests_per_conn
                    || shared.shutdown.load(Ordering::SeqCst);
                telemetry
                    .counter_with(
                        "net.requests",
                        &[("status", http::status_class(response.status))],
                    )
                    .inc();
                let written = write_wire(
                    &mut writer,
                    response.status,
                    response.content_type,
                    &response.headers,
                    response.body.as_bytes(),
                    closing,
                );
                match written {
                    Ok(()) if !closing => continue,
                    Ok(()) => return,
                    Err(e) => {
                        if http::is_timeout(e.kind()) {
                            telemetry
                                .counter_with("net.timeouts", &[("kind", "write")])
                                .inc();
                        }
                        return;
                    }
                }
            }
            Err(error) => {
                match &error {
                    ParseError::TimedOut { started: true } => {
                        telemetry
                            .counter_with("net.timeouts", &[("kind", "read")])
                            .inc();
                    }
                    ParseError::TimedOut { started: false } => {
                        telemetry
                            .counter_with("net.timeouts", &[("kind", "idle")])
                            .inc();
                    }
                    _ => {}
                }
                if let Some(status) = error.status() {
                    let body = format!(r#"{{"error":"{}"}}"#, http::reason_phrase(status));
                    telemetry
                        .counter_with("net.requests", &[("status", http::status_class(status))])
                        .inc();
                    let _ = write_wire(
                        &mut writer,
                        status,
                        JSON_CONTENT_TYPE,
                        &[],
                        body.as_bytes(),
                        true,
                    );
                }
                return;
            }
        }
    }
}

/// Produces the response for one parsed request: edge rate limit first,
/// then the in-process router.
fn respond(request: &Request, shared: &Shared) -> Response {
    if let Some(limiter) = &shared.limiter {
        if let Admission::Limited { retry_after_secs } = limiter.admit() {
            imcf_telemetry::global()
                .counter_with("net.rejected", &[("reason", "rate_limited")])
                .inc();
            return Response::too_many_requests(retry_after_secs);
        }
    }
    let body = String::from_utf8_lossy(&request.body);
    let body = body.trim();
    let line = if body.is_empty() {
        format!("{} {}", request.method, request.target)
    } else {
        format!("{} {} {}", request.method, request.target, body)
    };
    // Server-side handling latency feeds the obs plane's p99 SLO alert
    // (`net.request_micros.p99_slo` over the sampled histogram).
    let watch = imcf_telemetry::Stopwatch::start();
    let response = shared.router.handle(&line);
    imcf_telemetry::global()
        .histogram("net.request_micros")
        .observe(watch.elapsed_micros() as f64);
    response
}

/// Serializes one response onto the wire.
fn write_wire(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&'static str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        http::reason_phrase(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
