//! The closed-loop load generator: K concurrent keep-alive connections ×
//! M requests each over a route mix, with latency quantiles taken from an
//! `imcf-telemetry` histogram.
//!
//! Closed-loop means each connection has exactly one request outstanding:
//! the next request is sent only after the previous response is fully
//! read, so measured latency is honest end-to-end time under the offered
//! concurrency (no coordinated-omission games with an open-loop arrival
//! process we could not sustain anyway).

use crate::client::Connection;
use imcf_telemetry::{Registry, Stopwatch};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Latency histogram buckets, µs: 10 µs to 30 s, roughly geometric. Finer
/// than the telemetry default because p999 lives in the tail.
const LATENCY_BUCKETS_MICROS: [f64; 20] = [
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    2_500_000.0,
    5_000_000.0,
    10_000_000.0,
    30_000_000.0,
];

/// One route in the mix.
#[derive(Debug, Clone)]
pub struct RouteSpec {
    /// Mix name (`items`, `metrics`, ...).
    pub name: &'static str,
    /// HTTP method.
    pub method: &'static str,
    /// Request target.
    pub target: String,
    /// Request body (empty for GETs).
    pub body: Vec<u8>,
}

/// Builds the route mix from a comma-separated list of route names.
/// `zone` parameterizes the item routes (`<zone>_SetPoint`).
pub fn route_mix(names: &str, zone: &str) -> Result<Vec<RouteSpec>, String> {
    let mut mix = Vec::new();
    for name in names.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let spec = match name {
            "items" => RouteSpec {
                name: "items",
                method: "GET",
                target: String::from("/rest/items"),
                body: Vec::new(),
            },
            "item" => RouteSpec {
                name: "item",
                method: "GET",
                target: format!("/rest/items/{zone}_SetPoint"),
                body: Vec::new(),
            },
            "post" => RouteSpec {
                name: "post",
                method: "POST",
                target: format!("/rest/items/{zone}_SetPoint"),
                body: b"21.5".to_vec(),
            },
            "things" => RouteSpec {
                name: "things",
                method: "GET",
                target: String::from("/rest/things"),
                body: Vec::new(),
            },
            "firewall" => RouteSpec {
                name: "firewall",
                method: "GET",
                target: String::from("/rest/firewall"),
                body: Vec::new(),
            },
            "meter" => RouteSpec {
                name: "meter",
                method: "GET",
                target: String::from("/rest/meter"),
                body: Vec::new(),
            },
            "breakers" => RouteSpec {
                name: "breakers",
                method: "GET",
                target: String::from("/rest/breakers"),
                body: Vec::new(),
            },
            "metrics" => RouteSpec {
                name: "metrics",
                method: "GET",
                target: String::from("/rest/metrics"),
                body: Vec::new(),
            },
            "traces" => RouteSpec {
                name: "traces",
                method: "GET",
                target: String::from("/rest/traces"),
                body: Vec::new(),
            },
            other => {
                return Err(format!(
                    "unknown route `{other}` (items|item|post|things|firewall|meter|breakers|metrics|traces)"
                ))
            }
        };
        mix.push(spec);
    }
    if mix.is_empty() {
        return Err(String::from("route mix is empty"));
    }
    Ok(mix)
}

/// Load-run configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent connections (closed-loop workers).
    pub connections: usize,
    /// Requests each connection issues.
    pub requests_per_conn: u64,
    /// The route mix, cycled per worker with a per-worker offset.
    pub mix: Vec<RouteSpec>,
    /// Client-side socket timeout.
    pub timeout: Duration,
}

/// The machine-readable outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent connections.
    pub connections: usize,
    /// Requests attempted (connections × requests each).
    pub attempted: u64,
    /// Responses fully received.
    pub completed: u64,
    /// Responses by status class.
    pub by_class: BTreeMap<&'static str, u64>,
    /// Responses by exact status.
    pub by_status: BTreeMap<u16, u64>,
    /// Requests that died on a socket error (no response).
    pub io_errors: u64,
    /// Reconnections performed (server closed or refused).
    pub reconnects: u64,
    /// Wall-clock of the whole run, seconds.
    pub wall_secs: f64,
    /// Completed requests per wall-clock second.
    pub rps: f64,
    /// Latency quantiles in µs from the telemetry histogram.
    pub p50_micros: f64,
    /// 99th percentile latency, µs.
    pub p99_micros: f64,
    /// 99.9th percentile latency, µs.
    pub p999_micros: f64,
    /// Mean latency, µs.
    pub mean_micros: f64,
}

impl LoadReport {
    /// Responses in a class (`"2xx"`, ...).
    pub fn class(&self, class: &str) -> u64 {
        self.by_class.get(class).copied().unwrap_or(0)
    }

    /// The JSON document written under `target/experiments`.
    pub fn to_json(&self) -> serde_json::Value {
        let by_status = serde_json::Value::Object(
            self.by_status
                .iter()
                .map(|(status, count)| (status.to_string(), serde_json::to_value(count)))
                .collect(),
        );
        let by_class = serde_json::Value::Object(
            self.by_class
                .iter()
                .map(|(class, count)| (class.to_string(), serde_json::to_value(count)))
                .collect(),
        );
        let latency_micros = serde_json::json!({
            "p50": self.p50_micros,
            "p99": self.p99_micros,
            "p999": self.p999_micros,
            "mean": self.mean_micros,
        });
        serde_json::json!({
            "connections": self.connections,
            "attempted": self.attempted,
            "completed": self.completed,
            "by_class": by_class,
            "by_status": by_status,
            "io_errors": self.io_errors,
            "reconnects": self.reconnects,
            "wall_secs": self.wall_secs,
            "rps": self.rps,
            "latency_micros": latency_micros,
        })
    }
}

#[derive(Default)]
struct WorkerTally {
    by_status: BTreeMap<u16, u64>,
    completed: u64,
    io_errors: u64,
    reconnects: u64,
}

/// Runs the closed loop and reports.
pub fn run(config: &LoadConfig) -> Result<LoadReport, String> {
    if config.connections == 0 || config.requests_per_conn == 0 || config.mix.is_empty() {
        return Err(String::from(
            "loadgen needs at least one connection, one request, and one route",
        ));
    }
    // A private registry isolates the measurement from the process-global
    // metrics (several runs in one process must not share tails).
    let registry = Registry::new();
    let latency =
        registry.histogram_with_buckets("loadgen.request_micros", &[], &LATENCY_BUCKETS_MICROS);
    let tallies: Mutex<Vec<WorkerTally>> = Mutex::new(Vec::new());

    let wall = Stopwatch::start();
    std::thread::scope(|scope| {
        for worker in 0..config.connections {
            let latency = latency.clone();
            let tallies = &tallies;
            scope.spawn(move || {
                let tally = run_worker(config, worker, &latency);
                match tallies.lock() {
                    Ok(mut all) => all.push(tally),
                    Err(poisoned) => poisoned.into_inner().push(tally),
                }
            });
        }
    });
    let wall_secs = wall.elapsed().as_secs_f64();

    let tallies = match tallies.into_inner() {
        Ok(all) => all,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut by_status: BTreeMap<u16, u64> = BTreeMap::new();
    let (mut completed, mut io_errors, mut reconnects) = (0u64, 0u64, 0u64);
    for tally in &tallies {
        completed += tally.completed;
        io_errors += tally.io_errors;
        reconnects += tally.reconnects;
        for (status, count) in &tally.by_status {
            *by_status.entry(*status).or_insert(0) += count;
        }
    }
    let mut by_class: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (status, count) in &by_status {
        *by_class
            .entry(crate::http::status_class(*status))
            .or_insert(0) += count;
    }

    let digest = latency.summary();
    Ok(LoadReport {
        connections: config.connections,
        attempted: config.connections as u64 * config.requests_per_conn,
        completed,
        by_class,
        by_status,
        io_errors,
        reconnects,
        wall_secs,
        rps: if wall_secs > 0.0 {
            completed as f64 / wall_secs
        } else {
            0.0
        },
        p50_micros: digest.p50,
        p99_micros: digest.p99,
        p999_micros: digest.p999,
        mean_micros: digest.mean,
    })
}

fn run_worker(
    config: &LoadConfig,
    worker: usize,
    latency: &imcf_telemetry::Histogram,
) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut connection: Option<Connection> = None;
    for i in 0..config.requests_per_conn {
        let route = &config.mix[(worker + i as usize) % config.mix.len()];
        let sw = Stopwatch::start();
        let conn = match &mut connection {
            Some(c) => c,
            None => match Connection::open(&config.addr, config.timeout) {
                Ok(c) => {
                    if i > 0 {
                        tally.reconnects += 1;
                    }
                    connection.insert(c)
                }
                Err(_) => {
                    tally.io_errors += 1;
                    continue;
                }
            },
        };
        match conn.round_trip(route.method, &route.target, &route.body) {
            Ok(response) => {
                latency.observe(sw.elapsed_micros() as f64);
                tally.completed += 1;
                *tally.by_status.entry(response.status).or_insert(0) += 1;
                if response.closing {
                    connection = None;
                }
            }
            Err(_) => {
                tally.io_errors += 1;
                connection = None;
            }
        }
    }
    tally
}
