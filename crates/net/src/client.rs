//! A minimal blocking HTTP/1.1 client — just enough for the closed-loop
//! load generator and the wire-level tests to drive the server without
//! external dependencies.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, `Content-Length` bytes.
    pub body: Vec<u8>,
    /// Whether the server announced `Connection: close`.
    pub closing: bool,
}

impl ClientResponse {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects; `timeout` bounds reads and writes.
    pub fn open(addr: &str, timeout: std::time::Duration) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request. `body` is appended with a `Content-Length`.
    pub fn send(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: imcf\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()
    }

    /// Sends raw bytes verbatim (for malformed-input tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one response.
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        read_response(&mut self.reader)
    }

    /// One request/response round trip.
    pub fn round_trip(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.send(method, target, body)?;
        self.read_response()
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Parses one `HTTP/1.1 <status> ...` response off a buffered stream.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("bad status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let closing = headers
        .iter()
        .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
    Ok(ClientResponse {
        status,
        headers,
        body,
        closing,
    })
}
