//! HTTP/1.1 wire parsing with strict, fail-closed limits.
//!
//! The parser reads one request from a buffered socket and refuses — with
//! the *right* status code — anything oversized, truncated, or malformed.
//! Every limit is explicit in [`Limits`]; the server never allocates
//! proportionally to what a client claims, only to what it actually sends
//! within those limits.
//!
//! Error philosophy: a parse failure is a protocol outcome, not an
//! exception. [`ParseError`] carries the HTTP status the server should
//! answer with (or `None` when the peer is gone and no answer can be
//! delivered), and the connection is always closed afterwards — a client
//! that sent garbage does not get to keep the framing ambiguity alive.

use std::io::{BufRead, ErrorKind};

/// Hard limits on one request's wire footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum request-line length in bytes (method + URI + version).
    pub max_request_line_bytes: usize,
    /// Maximum cumulative header bytes (all header lines together).
    pub max_header_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum declared/readable body size in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line_bytes: 2048,
            max_header_bytes: 8192,
            max_headers: 64,
            max_body_bytes: 16384,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, verbatim (path plus optional `?query`).
    pub target: String,
    /// Header pairs in arrival order; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lowercase) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed before sending anything — a clean end of a
    /// keep-alive connection, not an error to answer.
    ConnectionClosed,
    /// The peer closed mid-request (truncated request line, headers, or
    /// body). Nothing useful can be written back.
    Truncated,
    /// The socket read timed out before a full request arrived. `started`
    /// distinguishes a slow-loris mid-request stall (answer 408) from an
    /// idle keep-alive connection timing out (just close).
    TimedOut {
        /// Whether any request bytes had already arrived.
        started: bool,
    },
    /// Syntactically invalid request line or header (400).
    Malformed(&'static str),
    /// The request line exceeded [`Limits::max_request_line_bytes`] (414).
    RequestLineTooLong,
    /// Headers exceeded [`Limits::max_header_bytes`] or
    /// [`Limits::max_headers`] (431).
    HeadersTooLarge,
    /// The declared body exceeds [`Limits::max_body_bytes`] (413).
    BodyTooLarge,
    /// Not HTTP/1.0 or HTTP/1.1 (505).
    UnsupportedVersion,
    /// `Transfer-Encoding` framing we do not implement (501).
    UnsupportedTransferEncoding,
    /// An underlying socket error; the connection is unusable.
    Io(ErrorKind),
}

impl ParseError {
    /// The status code to answer with, or `None` when no answer can (or
    /// should) be delivered and the connection is simply closed.
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::ConnectionClosed | ParseError::Truncated | ParseError::Io(_) => None,
            ParseError::TimedOut { started } => started.then_some(408),
            ParseError::Malformed(_) => Some(400),
            ParseError::RequestLineTooLong => Some(414),
            ParseError::HeadersTooLarge => Some(431),
            ParseError::BodyTooLarge => Some(413),
            ParseError::UnsupportedVersion => Some(505),
            ParseError::UnsupportedTransferEncoding => Some(501),
        }
    }
}

/// Is this `io::Error` a read/write timeout? (Unix reports `WouldBlock`,
/// Windows `TimedOut`.)
pub(crate) fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one line (through `\n`), enforcing a byte cap. Returns the line
/// without its trailing `\r\n`/`\n`. `got_bytes` is flipped as soon as any
/// byte arrives, so timeouts can be classified.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    cap: usize,
    over_cap: ParseError,
    got_bytes: &mut bool,
) -> Result<Vec<u8>, ParseError> {
    let mut line = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok([]) => {
                return Err(if line.is_empty() && !*got_bytes {
                    ParseError::ConnectionClosed
                } else {
                    ParseError::Truncated
                });
            }
            Ok(buf) => buf,
            Err(e) if is_timeout(e.kind()) => {
                return Err(ParseError::TimedOut {
                    started: *got_bytes || !line.is_empty(),
                });
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e.kind())),
        };
        *got_bytes = true;
        let (consume, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        if line.len() + consume > cap + 2 {
            // +2 leaves room for the CRLF itself on an exactly-cap line.
            return Err(over_cap);
        }
        line.extend_from_slice(&available[..consume]);
        reader.consume(consume);
        if done {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return Ok(line);
        }
    }
}

/// Reads and parses one request from `reader` under `limits`.
///
/// The stream's read timeout (set by the caller via
/// `TcpStream::set_read_timeout`) bounds every blocking read; a timeout
/// surfaces as [`ParseError::TimedOut`].
pub fn read_request<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<Request, ParseError> {
    let mut got_bytes = false;
    let line = read_line_limited(
        reader,
        limits.max_request_line_bytes,
        ParseError::RequestLineTooLong,
        &mut got_bytes,
    )?;
    let line = std::str::from_utf8(&line)
        .map_err(|_| ParseError::Malformed("request line is not UTF-8"))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(
                "expected `METHOD /target HTTP/version`",
            ))
        }
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("method must be ASCII uppercase"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("target must start with `/`"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::UnsupportedVersion),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line_limited(
            reader,
            limits
                .max_header_bytes
                .saturating_sub(header_bytes)
                .min(limits.max_header_bytes),
            ParseError::HeadersTooLarge,
            &mut got_bytes,
        )?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > limits.max_header_bytes || headers.len() >= limits.max_headers {
            return Err(ParseError::HeadersTooLarge);
        }
        let line =
            std::str::from_utf8(&line).map_err(|_| ParseError::Malformed("header is not UTF-8"))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("header line without `:`"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed("invalid Content-Length"))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(ParseError::Truncated),
            Ok(n) => filled += n,
            Err(e) if is_timeout(e.kind()) => return Err(ParseError::TimedOut { started: true }),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => http11,
    };
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
        keep_alive,
    })
}

/// The reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// The 2xx/3xx/4xx/5xx class label of a status, the granularity the
/// `net.requests` and `api.requests` metrics use.
pub fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        500..=599 => "5xx",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let r = parse(b"GET /rest/items HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/rest/items");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.keep_alive);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /rest/items/a HTTP/1.1\r\nContent-Length: 4\r\n\r\n21.5").unwrap();
        assert_eq!(r.body, b"21.5");
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse(b"garbage\r\n\r\n").unwrap_err().status(), Some(400));
        assert_eq!(
            parse(b"GET no-slash HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(400)
        );
        assert_eq!(
            parse(b"get /lower HTTP/1.1\r\n\r\n").unwrap_err().status(),
            Some(400)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nbad header line\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(400)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(400)
        );
    }

    #[test]
    fn rejects_oversize_everything() {
        let long_uri = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(4096));
        assert_eq!(
            parse(long_uri.as_bytes()).unwrap_err(),
            ParseError::RequestLineTooLong
        );
        let big_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(9000));
        assert_eq!(
            parse(big_header.as_bytes()).unwrap_err(),
            ParseError::HeadersTooLarge
        );
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..100)
                .map(|i| format!("X-{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(
            parse(many_headers.as_bytes()).unwrap_err(),
            ParseError::HeadersTooLarge
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn rejects_unsupported_framing() {
        assert_eq!(
            parse(b"GET / HTTP/2\r\n\r\n").unwrap_err(),
            ParseError::UnsupportedVersion
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            ParseError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn truncation_fails_closed() {
        assert_eq!(parse(b"").unwrap_err(), ParseError::ConnectionClosed);
        assert_eq!(parse(b"GET /part").unwrap_err(), ParseError::Truncated);
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf").unwrap_err(),
            ParseError::Truncated
        );
        assert_eq!(parse(b"GET /part").unwrap_err().status(), None);
    }

    #[test]
    fn status_classes() {
        assert_eq!(status_class(200), "2xx");
        assert_eq!(status_class(301), "3xx");
        assert_eq!(status_class(429), "4xx");
        assert_eq!(status_class(503), "5xx");
        assert_eq!(status_class(100), "other");
    }
}
