//! `imcf-net` — the IMCF network plane.
//!
//! The paper's Meta-Control Firewall mediates between a cloud GUI and
//! openHAB over REST; until this crate, the repo's REST surface
//! ([`imcf_controller::api::Router`]) was purely in-process — no socket
//! anywhere, so nothing could be load-tested or driven by an external
//! client. `imcf-net` puts the router on a real wire:
//!
//! * [`server`] — a dependency-free threaded HTTP/1.1 server over
//!   `std::net::TcpListener`: bounded worker/acceptor model with a hard
//!   connection cap (503 + `Retry-After` on saturation), keep-alive with
//!   per-connection request caps, strict parse limits, read/write
//!   timeouts, per-home token-bucket enforcement at the edge (429), and
//!   graceful shutdown that drains in-flight requests.
//! * [`http`] — the wire parser and its fail-closed [`http::Limits`].
//! * [`limiter`] — the PR-4 token bucket, wall-clock refilled, at the edge.
//! * [`client`] — a minimal blocking HTTP/1.1 client.
//! * [`loadgen`] — the closed-loop load generator behind `imcf loadgen`,
//!   reporting p50/p99/p999 from `imcf-telemetry` histograms.
//!
//! The whole plane is compat-shim-world native: no tokio, no hyper —
//! `std::net` + threads, same as the deterministic pool underneath the
//! planner.

pub mod client;
pub mod http;
pub mod limiter;
pub mod loadgen;
pub mod server;

pub use http::Limits;
pub use server::{serve, NetConfig, ServerHandle};
