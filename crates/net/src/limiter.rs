//! Edge enforcement of the per-home token bucket (PR 4) at the socket
//! boundary.
//!
//! The cloud relay's [`imcf_controller::cloud::RateLimit`] protects a home
//! from a runaway APP *behind* the relay; this limiter applies the same
//! bucket shape at the network edge, so an abusive client burns a cheap
//! 429 in the server's worker thread instead of a controller dispatch. One
//! [`EdgeLimiter`] guards one home's listener (the `imcf-net` server
//! fronts a single Local Controller), refilled by wall-clock seconds —
//! the edge lives outside the deterministic core, so real time is the
//! honest clock here.

use imcf_controller::cloud::RateLimit;
use parking_lot::Mutex;
use std::time::Instant;

struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// A wall-clock token bucket with the PR-4 [`RateLimit`] shape:
/// `burst` capacity, `refill_per_tick` tokens per second (the edge maps
/// one relay tick to one second).
pub struct EdgeLimiter {
    limit: RateLimit,
    state: Mutex<BucketState>,
}

/// The outcome of asking the limiter for one request's worth of budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Within budget; the request may proceed.
    Admitted,
    /// Over budget; answer 429 with this `Retry-After` value in seconds
    /// (at least 1, rounded up to when a whole token exists again).
    Limited {
        /// Whole seconds until a token is available.
        retry_after_secs: u64,
    },
}

impl EdgeLimiter {
    /// A full bucket under `limit`.
    pub fn new(limit: RateLimit) -> Self {
        EdgeLimiter {
            limit,
            state: Mutex::new(BucketState {
                tokens: f64::from(limit.burst),
                last_refill: Instant::now(),
            }),
        }
    }

    /// Spends one token, refilling for the elapsed time first.
    pub fn admit(&self) -> Admission {
        let mut state = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_refill).as_secs_f64();
        state.last_refill = now;
        state.tokens =
            (state.tokens + elapsed * self.limit.refill_per_tick).min(f64::from(self.limit.burst));
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            return Admission::Admitted;
        }
        let deficit = 1.0 - state.tokens;
        let retry_after_secs = if self.limit.refill_per_tick > 0.0 {
            (deficit / self.limit.refill_per_tick).ceil().max(1.0) as u64
        } else {
            // Never refills: the client can only wait for an operator.
            u64::MAX
        };
        Admission::Limited { retry_after_secs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_limited() {
        let limiter = EdgeLimiter::new(RateLimit {
            burst: 3,
            refill_per_tick: 0.0,
        });
        for _ in 0..3 {
            assert_eq!(limiter.admit(), Admission::Admitted);
        }
        assert!(matches!(limiter.admit(), Admission::Limited { .. }));
    }

    #[test]
    fn refill_restores_budget() {
        let limiter = EdgeLimiter::new(RateLimit {
            burst: 1,
            refill_per_tick: 1000.0,
        });
        assert_eq!(limiter.admit(), Admission::Admitted);
        // At 1000 tokens/sec even a millisecond of wall time refills one.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(limiter.admit(), Admission::Admitted);
    }

    #[test]
    fn retry_after_reflects_refill_rate() {
        let limiter = EdgeLimiter::new(RateLimit {
            burst: 1,
            refill_per_tick: 0.1,
        });
        assert_eq!(limiter.admit(), Admission::Admitted);
        match limiter.admit() {
            Admission::Limited { retry_after_secs } => {
                assert!((1..=10).contains(&retry_after_secs), "{retry_after_secs}");
            }
            Admission::Admitted => panic!("bucket of 1 must be dry"),
        }
    }
}
