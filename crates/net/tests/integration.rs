//! End-to-end tests: a real TCP client against the full stack — router
//! routes, keep-alive reuse, the edge token bucket (429), saturation
//! (503), and graceful shutdown with zero dropped in-flight responses.

mod common;

use common::{quick_config, start, start_with_readiness, CLIENT_TIMEOUT};
use imcf_controller::cloud::RateLimit;
use imcf_net::client::Connection;
use imcf_net::NetConfig;
use std::time::Duration;

#[test]
fn routes_work_end_to_end_on_one_keep_alive_connection() {
    let server = start(quick_config());
    let addr = server.addr().to_string();

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");

    // Items listing names the provisioned zone's devices.
    let items = conn.round_trip("GET", "/rest/items", b"").expect("items");
    assert_eq!(items.status, 200);
    assert!(
        items.body_text().contains("den_SetPoint"),
        "items must list the provisioned zone: {}",
        items.body_text()
    );

    // Actuate over the wire, then read the new state back — same conn.
    let post = conn
        .round_trip("POST", "/rest/items/den_SetPoint", b"21.5")
        .expect("post");
    assert_eq!(post.status, 200, "body: {}", post.body_text());
    let item = conn
        .round_trip("GET", "/rest/items/den_SetPoint", b"")
        .expect("item");
    assert_eq!(item.status, 200);
    assert!(
        item.body_text().contains("21.5"),
        "the POSTed setpoint must be visible: {}",
        item.body_text()
    );

    // Firewall, metrics, and traces endpoints respond on the same
    // connection (keep-alive reuse across heterogeneous routes).
    for target in ["/rest/firewall", "/rest/metrics", "/rest/traces"] {
        let response = conn.round_trip("GET", target, b"").expect(target);
        assert_eq!(response.status, 200, "{target}: {}", response.body_text());
        assert!(
            !response.closing,
            "{target} must not close a keep-alive conn"
        );
    }

    // The metrics scrape taken over the wire includes the network plane's
    // own counters — the server observes itself.
    let metrics = conn
        .round_trip("GET", "/rest/metrics", b"")
        .expect("metrics");
    assert!(
        metrics.body_text().contains("net_requests"),
        "wire scrape must carry net.requests: {}",
        metrics.body_text()
    );
    server.shutdown();
}

/// Supervision probes over the wire: liveness stays 200 across the
/// readiness transition; readiness answers 503 + `Retry-After` while the
/// instance drains, without closing the keep-alive connection.
#[test]
fn healthz_and_readyz_probe_the_drain_transition() {
    let (server, readiness) = start_with_readiness(quick_config());
    let addr = server.addr().to_string();

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    let health = conn
        .round_trip("GET", "/rest/healthz", b"")
        .expect("healthz");
    assert_eq!(health.status, 200);
    let ready = conn.round_trip("GET", "/rest/readyz", b"").expect("readyz");
    assert_eq!(ready.status, 200, "body: {}", ready.body_text());

    // Drain begins: readiness flips, liveness must not.
    readiness.store(false, std::sync::atomic::Ordering::SeqCst);
    let ready = conn.round_trip("GET", "/rest/readyz", b"").expect("readyz");
    assert_eq!(ready.status, 503);
    assert_eq!(ready.header("retry-after"), Some("1"));
    assert!(!ready.closing, "a 503 probe must not tear down the conn");
    let health = conn
        .round_trip("GET", "/rest/healthz", b"")
        .expect("healthz");
    assert_eq!(health.status, 200);

    server.shutdown();
}

#[test]
fn unknown_method_on_known_path_is_405_over_the_wire() {
    let server = start(quick_config());
    let addr = server.addr().to_string();

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    let response = conn
        .round_trip("DELETE", "/rest/items", b"")
        .expect("answer");
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("GET"));

    let response = conn
        .round_trip("PUT", "/rest/items/den_SetPoint", b"")
        .expect("answer");
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("GET, POST"));
    server.shutdown();
}

#[test]
fn edge_token_bucket_answers_429_before_the_router() {
    let server = start(NetConfig {
        // Two tokens, no refill: the third request must be refused at the
        // edge regardless of route.
        rate_limit: Some(RateLimit {
            burst: 2,
            refill_per_tick: 0.0,
        }),
        ..quick_config()
    });
    let addr = server.addr().to_string();

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    for _ in 0..2 {
        let ok = conn
            .round_trip("GET", "/rest/items", b"")
            .expect("admitted");
        assert_eq!(ok.status, 200);
    }
    let limited = conn.round_trip("GET", "/rest/items", b"").expect("limited");
    assert_eq!(limited.status, 429);
    let retry_after = limited
        .header("retry-after")
        .expect("429 must carry Retry-After");
    assert!(
        retry_after.parse::<u64>().is_ok(),
        "Retry-After must be integral seconds: {retry_after}"
    );
    // The refusal happens at the edge: the connection itself stays open.
    assert!(!limited.closing, "a 429 must not tear the connection down");
    server.shutdown();
}

#[test]
fn saturated_server_answers_503_with_retry_after() {
    let server = start(NetConfig {
        max_connections: 1,
        ..quick_config()
    });
    let addr = server.addr().to_string();

    // Occupy the only worker with a parked keep-alive connection. The
    // round trip guarantees the worker has picked the connection up (it
    // answered), so the pool is deterministically full.
    let mut parked = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    let ok = parked.round_trip("GET", "/rest/items", b"").expect("park");
    assert_eq!(ok.status, 200);

    // A second connection is refused inline: 503 + Retry-After, close.
    let mut refused = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    refused.send("GET", "/rest/items", b"").expect("send");
    let response = refused.read_response().expect("a 503 answer");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    assert!(response.closing);

    // The parked connection still works — saturation refused new work
    // without degrading admitted work.
    let still_ok = parked
        .round_trip("GET", "/rest/metrics", b"")
        .expect("parked");
    assert_eq!(still_ok.status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = start(NetConfig {
        read_timeout: Duration::from_millis(200),
        ..quick_config()
    });
    let addr = server.addr().to_string();

    // Prove the worker owns this connection, then put a request on the
    // wire and only then begin shutdown: the bytes are in flight when the
    // flag flips, and the worker must still answer them.
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    assert_eq!(
        conn.round_trip("GET", "/rest/items", b"")
            .expect("warm")
            .status,
        200
    );
    conn.send("POST", "/rest/items/den_SetPoint", b"19.0")
        .expect("send in-flight request");

    let shutdown = std::thread::spawn(move || server.shutdown());
    let response = conn.read_response().expect("in-flight response delivered");
    assert_eq!(
        response.status,
        200,
        "an in-flight request must be answered during drain: {}",
        response.body_text()
    );
    shutdown.join().expect("shutdown completes");

    // After shutdown the port no longer accepts service: either connect
    // fails outright or the socket yields no response.
    match Connection::open(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut conn) => {
            let _ = conn.send("GET", "/rest/items", b"");
            assert!(
                conn.read_response().is_err(),
                "a stopped server must not answer"
            );
        }
    }
}
