//! Shared scaffolding for the wire-level tests: a demo home behind a
//! real `imcf-net` server on an ephemeral port.

use imcf_controller::api::Router;
use imcf_controller::controller::{ControllerConfig, LocalController};
use imcf_core::calendar::PaperCalendar;
use imcf_net::{serve, NetConfig, ServerHandle};
use imcf_sim::meter::EnergyMeter;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Starts a server fronting a freshly provisioned one-zone home
/// (`den_SetPoint` and friends exist). The caller must call
/// `handle.shutdown()` at the end of the test.
pub fn start(config: NetConfig) -> ServerHandle {
    start_with_readiness(config).0
}

/// Like [`start`], but also hands back the router's readiness flag so a
/// test can drive `/rest/readyz` through its drain transition.
pub fn start_with_readiness(
    config: NetConfig,
) -> (ServerHandle, Arc<std::sync::atomic::AtomicBool>) {
    let mut controller =
        LocalController::new(ControllerConfig::default(), PaperCalendar::january_start());
    controller.provision_zone("den").expect("provision den");
    let router = Router::new(
        controller.registry(),
        controller.firewall(),
        Arc::new(Mutex::new(EnergyMeter::new(PaperCalendar::january_start()))),
    )
    .with_breakers(controller.breakers(), controller.chaos_clock());
    let readiness = router.readiness();
    let handle = serve(config, Arc::new(router)).expect("bind an ephemeral port");
    (handle, readiness)
}

/// A config with test-friendly (short) timeouts.
pub fn quick_config() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(400),
        ..NetConfig::default()
    }
}

/// The client-side timeout used by tests — comfortably above the server's.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);
