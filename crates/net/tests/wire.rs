//! Wire-parser behaviour over a real TCP socket: malformed, oversized,
//! truncated, pipelined, and stalled requests all fail closed with the
//! right status — and the server never panics or wedges.

mod common;

use common::{quick_config, start, CLIENT_TIMEOUT};
use imcf_net::client::Connection;
use imcf_net::{Limits, NetConfig};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

#[test]
fn malformed_request_line_is_400_and_closes() {
    let server = start(quick_config());
    let addr = server.addr().to_string();

    for garbage in [
        "not-http\r\n\r\n",
        "GET\r\n\r\n",
        "get /rest/items HTTP/1.1\r\n\r\n",
        "GET rest/items HTTP/1.1\r\n\r\n",
        "GET /rest/items HTTP/1.1 extra\r\n\r\n",
    ] {
        let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
        conn.send_raw(garbage.as_bytes()).expect("send");
        let response = conn.read_response().expect("a 400 answer");
        assert_eq!(response.status, 400, "garbage: {garbage:?}");
        assert!(response.closing, "a malformed request must close");
    }

    // The server is still healthy afterwards.
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("reconnect");
    let ok = conn
        .round_trip("GET", "/rest/items", b"")
        .expect("round trip");
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn unsupported_version_and_framing_fail_closed() {
    let server = start(quick_config());
    let addr = server.addr().to_string();

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(b"GET /rest/items HTTP/2.0\r\n\r\n")
        .expect("send");
    assert_eq!(conn.read_response().expect("answer").status, 505);

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(b"POST /rest/items/den_SetPoint HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .expect("send");
    assert_eq!(conn.read_response().expect("answer").status, 501);
    server.shutdown();
}

#[test]
fn oversized_request_line_and_headers_are_limited() {
    let server = start(NetConfig {
        limits: Limits {
            max_request_line_bytes: 64,
            max_header_bytes: 128,
            max_headers: 4,
            max_body_bytes: 64,
        },
        ..quick_config()
    });
    let addr = server.addr().to_string();

    // Request line past the 64-byte cap → 414.
    let long_target = format!("GET /rest/{} HTTP/1.1\r\n\r\n", "x".repeat(100));
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(long_target.as_bytes()).expect("send");
    assert_eq!(conn.read_response().expect("answer").status, 414);

    // Cumulative header bytes past the cap → 431.
    let fat_header = format!(
        "GET /rest/items HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "y".repeat(200)
    );
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(fat_header.as_bytes()).expect("send");
    assert_eq!(conn.read_response().expect("answer").status, 431);

    // Too many header lines → 431.
    let many = "GET /rest/items HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\nD: 4\r\nE: 5\r\n\r\n";
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(many.as_bytes()).expect("send");
    assert_eq!(conn.read_response().expect("answer").status, 431);

    // Declared body past the cap → 413, before reading the body at all.
    let big_body = "POST /rest/items/den_SetPoint HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(big_body.as_bytes()).expect("send");
    assert_eq!(conn.read_response().expect("answer").status, 413);
    server.shutdown();
}

#[test]
fn truncated_body_gets_no_answer_and_server_survives() {
    let server = start(quick_config());
    let addr = server.addr();

    // Send a body shorter than Content-Length, then half-close. The
    // request cannot be answered (the framing is gone) — the server must
    // close silently, not panic and not reply.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("read timeout");
    let mut stream = stream;
    stream
        .write_all(b"POST /rest/items/den_SetPoint HTTP/1.1\r\nContent-Length: 10\r\n\r\n21.")
        .expect("send truncated");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to close");
    assert!(
        rest.is_empty(),
        "a truncated request must not be answered, got: {}",
        String::from_utf8_lossy(&rest)
    );

    // And a fresh connection still works.
    let mut conn = Connection::open(&addr.to_string(), CLIENT_TIMEOUT).expect("reconnect");
    assert_eq!(
        conn.round_trip("GET", "/rest/items", b"")
            .expect("ok")
            .status,
        200
    );
    server.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_are_answered_in_order() {
    let server = start(quick_config());
    let addr = server.addr().to_string();

    // Two requests in one write; the buffered reader must answer both on
    // the same connection, in order.
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(
        b"GET /rest/items HTTP/1.1\r\n\r\nPOST /rest/items/den_SetPoint HTTP/1.1\r\nContent-Length: 4\r\n\r\n21.5",
    )
    .expect("pipelined send");
    let first = conn.read_response().expect("first answer");
    assert_eq!(first.status, 200);
    assert!(!first.closing, "keep-alive must survive the first request");
    let second = conn.read_response().expect("second answer");
    assert_eq!(second.status, 200);
    server.shutdown();
}

#[test]
fn per_connection_request_cap_closes_politely() {
    let server = start(NetConfig {
        max_requests_per_conn: 2,
        ..quick_config()
    });
    let addr = server.addr().to_string();

    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    let first = conn.round_trip("GET", "/rest/items", b"").expect("first");
    assert_eq!(first.status, 200);
    assert!(!first.closing);
    let second = conn.round_trip("GET", "/rest/items", b"").expect("second");
    assert_eq!(second.status, 200);
    assert!(second.closing, "the cap-reaching response must say close");
    server.shutdown();
}

#[test]
fn slow_loris_mid_request_is_408() {
    let server = start(NetConfig {
        read_timeout: Duration::from_millis(150),
        ..quick_config()
    });
    let addr = server.addr().to_string();

    // Start a request line and stall. The read timeout fires mid-request,
    // which is answerable: 408 and close.
    let mut conn = Connection::open(&addr, CLIENT_TIMEOUT).expect("connect");
    conn.send_raw(b"GET /rest/it").expect("partial send");
    let response = conn.read_response().expect("a 408 answer");
    assert_eq!(response.status, 408);
    assert!(response.closing);
    server.shutdown();
}

#[test]
fn idle_keep_alive_connection_is_closed_silently() {
    let server = start(NetConfig {
        read_timeout: Duration::from_millis(150),
        ..quick_config()
    });
    let addr = server.addr();

    // Connect and send nothing: an idle timeout is not an error the peer
    // should hear about — the socket just closes (EOF), no status line.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("read timeout");
    let mut stream = stream;
    let mut buffer = Vec::new();
    match stream.read_to_end(&mut buffer) {
        Ok(_) => assert!(
            buffer.is_empty(),
            "idle close must be silent, got: {}",
            String::from_utf8_lossy(&buffer)
        ),
        Err(e) => assert!(
            matches!(
                e.kind(),
                ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
            ),
            "unexpected error kind: {e:?}"
        ),
    }
    server.shutdown();
}
