//! The paper's smart-dorms motivational scenario (§I-A): the SAVES
//! inter-dormitory competition targeted 8 % electricity savings, but
//! students with "common sense and perseverance" only reached 4.44 % —
//! the paper argues intelligent control closes that gap.
//!
//! This example runs the campus dorms dataset (50 apartments) through the
//! Energy Planner at increasing savings targets and reports the achieved
//! savings and the convenience price, showing that the SAVES target is
//! reachable at a fraction of a percent of comfort.
//!
//! Run with: `cargo run --release --example dorm_campaign`
//! (set IMCF_DORM_MONTHS to shorten the horizon for a quick look)

use imcf::core::baselines::run_mr;
use imcf::core::calendar::HOURS_PER_MONTH;
use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};

fn main() {
    let months: u64 = std::env::var("IMCF_DORM_MONTHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let horizon = months * HOURS_PER_MONTH;

    let dataset = Dataset::build(DatasetKind::Dorms, 0);
    println!(
        "campus dorms: {} rooms, {} rules, planning {} months",
        dataset.trace.zone_count(),
        dataset.total_rules(),
        months
    );

    let ecp = dataset.derive_mr_ecp();
    // The campaign baseline: what the dorms would consume executing every
    // comfort rule greedily.
    let base_plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp.clone(),
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &base_plan);
    let greedy = run_mr(builder.range(0..horizon));
    println!("greedy consumption: {:.0} kWh\n", greedy.fe_kwh());

    println!(
        "{:>12} | {:>12} | {:>16} | {:>10}",
        "target", "EP kWh", "achieved saving", "F_CE (%)"
    );
    for target_pct in [0.0, 4.44, 8.0, 15.0, 25.0] {
        let plan = AmortizationPlan::new(
            ApKind::Eaf,
            ecp.clone(),
            dataset.budget_kwh,
            dataset.horizon_hours,
            dataset.calendar(),
        )
        .with_savings(target_pct / 100.0);
        let builder = SlotBuilder::new(&dataset, &plan);
        let ep =
            EnergyPlanner::from_config(PlannerConfig::default()).plan(builder.range(0..horizon));
        let achieved = 100.0 * (1.0 - ep.fe_kwh() / greedy.fe_kwh());
        println!(
            "{:>11.2}% | {:>12.0} | {:>15.1}% | {:>10.2}",
            target_pct,
            ep.fe_kwh(),
            achieved,
            ep.fce_percent()
        );
    }
    println!("\nthe SAVES 8 % target falls out of the planner with low comfort cost —");
    println!("no perseverance required.");
}
