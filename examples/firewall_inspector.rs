//! Drive the full Local Controller for one simulated day and watch the
//! meta-control firewall work: plans become ACCEPT/DROP chains, adopted
//! rules actuate devices, and everything is observable on the event bus
//! and persisted through the embedded store.
//!
//! Run with: `cargo run --release --example firewall_inspector`

use imcf::controller::{ControllerConfig, Event, LocalController};
use imcf::core::calendar::PaperCalendar;
use imcf::core::{AmortizationPlan, ApKind};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};
use imcf::store::Store;

fn main() {
    // A two-zone home on the flat's device calibration, deliberately given
    // a tight budget so the firewall has something to do.
    let dataset = Dataset::build(DatasetKind::House, 3);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    )
    .with_savings(0.30); // push the budget down to force drops
    let builder = SlotBuilder::new(&dataset, &plan);

    let mut controller =
        LocalController::new(ControllerConfig::default(), PaperCalendar::starting_in(10));
    for zone in &dataset.trace.zones {
        controller.provision_zone(&zone.zone).unwrap();
    }
    let events = controller.bus().subscribe();

    // Persist tick summaries like the paper's MariaDB layer would. Start
    // from a clean slate: a `ticks` table left by an older build may use
    // a previous TickSummary schema.
    let dir = std::env::temp_dir().join("imcf-firewall-inspector");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("store opens");
    let mut ticks = store
        .table::<imcf::controller::TickSummary>("ticks")
        .expect("table opens");

    // Pick a January day (the trace starts in October).
    let day_start = 3 * imcf::core::calendar::HOURS_PER_MONTH + 10 * 24;
    println!("=== one winter day through the controller ===\n");
    for slot in builder.range(day_start..day_start + 24) {
        let hour = slot.hour_index % 24;
        let summary = controller.tick(&slot);
        ticks.insert(summary.clone()).expect("tick persists");
        if !slot.is_empty() {
            println!(
                "{hour:02}:00  candidates {}  adopted {}  dropped {}  energy {:.2} kWh  (delivered {}, blocked {})",
                slot.len(),
                summary.adopted.len(),
                summary.dropped.len(),
                summary.energy_kwh,
                summary.delivered,
                summary.blocked
            );
            if !summary.dropped.is_empty() {
                let fw = controller.firewall();
                let script = fw.lock().render_script();
                for line in script.lines().filter(|l| l.contains("DROP")) {
                    println!("        {line}");
                }
            }
        }
    }
    ticks.snapshot().expect("snapshot persists");

    let delivered = events
        .try_iter()
        .filter(|e| matches!(e, Event::CommandDelivered { .. }))
        .count();
    println!("\nevent bus saw {delivered} delivered commands");
    println!(
        "day total: {:.2} kWh metered",
        controller.meter().total_kwh()
    );
    println!(
        "tick log persisted to {} ({} rows)",
        dir.display(),
        ticks.len()
    );
}
