//! The paper's smart-home motivational scenario (§I-A): a family on a
//! photovoltaic net-metering scheme with a yearly production budget wants
//! its comfort rules filtered so the year ends on budget — without manual
//! guess-work.
//!
//! We scale the scenario to our calibrated flat (the paper's family budget
//! of 8 500 kWh covers heating *and* mobility; the rule-managed share here
//! is the flat's 11 000 kWh / 3 years ≈ 3 666 kWh/year), plan a full year,
//! print the monthly ledger, and account the CO₂ impact of the filtered
//! plan versus greedy execution.
//!
//! Run with: `cargo run --release --example smart_home_budget`

use imcf::core::baselines::run_mr;
use imcf::core::calendar::HOURS_PER_MONTH;
use imcf::core::co2::{Co2Savings, EmissionFactor};
use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};

const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

fn main() {
    let dataset = Dataset::build(DatasetKind::Flat, 7);
    let ecp = dataset.derive_mr_ecp();
    let yearly_budget = dataset.budget_kwh / 3.0;
    println!("family budget: {yearly_budget:.0} kWh/year (net-metered PV production)");

    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    let planner = EnergyPlanner::from_config(PlannerConfig::default());

    // Plan the first year month by month for the ledger (the trace starts
    // in October, like the CASAS data).
    println!(
        "\n{:<5} {:>12} {:>12} {:>10}",
        "month", "EP kWh", "greedy kWh", "F_CE (%)"
    );
    let mut ep_total = 0.0;
    let mut mr_total = 0.0;
    for m in 0..12u64 {
        let range = m * HOURS_PER_MONTH..(m + 1) * HOURS_PER_MONTH;
        let ep = planner.plan(builder.range(range.clone()));
        let mr = run_mr(builder.range(range));
        let month_name = MONTH_NAMES[((9 + m) % 12) as usize];
        println!(
            "{:<5} {:>12.1} {:>12.1} {:>10.2}",
            month_name,
            ep.fe_kwh(),
            mr.fe_kwh(),
            ep.fce_percent()
        );
        ep_total += ep.fe_kwh();
        mr_total += mr.fe_kwh();
    }
    println!(
        "\nyear one: EP {ep_total:.0} kWh vs greedy {mr_total:.0} kWh (budget {yearly_budget:.0} kWh)"
    );
    if ep_total <= yearly_budget {
        println!("the family ends the year ON budget — no manual planning involved.");
    }

    // CO₂ accounting (paper future work): what the filtering saves if the
    // overflow beyond PV production had come from the grid.
    let grid_overflow_greedy = (mr_total - yearly_budget).max(0.0);
    let grid_overflow_ep = (ep_total - yearly_budget).max(0.0);
    let co2 = Co2Savings::compare(
        EmissionFactor::eu_average(),
        grid_overflow_greedy,
        grid_overflow_ep,
    );
    println!(
        "grid overflow avoided: {:.0} kWh → {:.0} kg CO₂e/year at the EU average mix",
        grid_overflow_greedy - grid_overflow_ep,
        co2.saved_kg()
    );
}
