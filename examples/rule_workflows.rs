//! Tour the full Rule Automation Workflow spectrum of the paper's Fig. 1:
//! manual rule tables (parsed from text), IFTTT trigger-action rules,
//! procedural workflows with variables and loops, and static conflict
//! analysis over the combined table.
//!
//! Run with: `cargo run --release --example rule_workflows`

use imcf::rules::conflict;
use imcf::rules::env::EnvSnapshot;
use imcf::rules::parse::{format_mrt, parse_ifttt, parse_mrt};
use imcf::rules::workflow::{ArithOp, CmpOp, Expr, Stmt, Workflow};
use imcf::rules::Weather;

fn main() {
    // --- 1. Declarative meta-rules, stored as plain text. ---
    let mrt_text = "\
# bedroom preferences
Night Heat | 01:00 - 07:00 | Set Temperature | 25 | owner=father
Morning Lights | 04:00 - 09:00 | Set Light | 40 | owner=mother
Overlapping Heat | 06:00 - 10:00 | Set Temperature | 21 | owner=mother
Medical Fridge | 00:00 - 24:00 | Set Temperature | 4 | necessity
Energy Cap | for 1 month | Set kWh Limit | 300
";
    let mrt = parse_mrt(mrt_text).expect("MRT parses");
    println!("=== parsed Meta-Rule Table ===\n{}", format_mrt(&mrt));

    // --- 2. Static conflict analysis (paper §I-B). ---
    let conflicts = conflict::analyze(&mrt, |_rule| 0.5);
    println!("=== conflicts ===");
    for c in &conflicts {
        println!("  [{:?}] {c}", c.severity());
    }
    if conflicts.is_empty() {
        println!("  none");
    }

    // --- 3. IFTTT trigger-action rules against a live snapshot. ---
    let ifttt = parse_ifttt(
        "IF Weather IS Sunny THEN Set Light 0\n\
         IF Temperature < 10 THEN Set Temperature 24\n\
         IF Season IS Winter AND Light Level < 5 THEN Set Light 40\n",
    )
    .expect("IFTTT parses");
    let env = EnvSnapshot::neutral()
        .with_month(1)
        .with_hour(7)
        .with_temperature(6.0)
        .with_light(2.0)
        .with_weather(Weather::Cloudy);
    println!("\n=== IFTTT resolution at a cold dark winter morning ===");
    for (class, action) in ifttt.resolve(&env) {
        println!("  {class}: {action}");
    }

    // --- 4. A procedural workflow (the Apple-Automation end). ---
    let preheat = Workflow::new(
        "gentle preheat",
        vec![
            Stmt::Set("t".into(), Expr::EnvTemperature),
            Stmt::While {
                cond: Expr::cmp(CmpOp::Lt, Expr::Var("t".into()), Expr::Num(21.0)),
                body: vec![
                    Stmt::Set(
                        "t".into(),
                        Expr::arith(ArithOp::Add, Expr::Var("t".into()), Expr::Num(2.0)),
                    ),
                    Stmt::ActuateTemperature(Expr::Var("t".into())),
                    Stmt::Wait(Expr::Num(20.0)),
                ],
            },
            Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::EnvLight, Expr::Num(10.0)),
                then_block: vec![Stmt::ActuateLight(Expr::Num(30.0))],
                else_block: vec![],
            },
        ],
    );
    let outcome = preheat.run(&env).expect("workflow runs");
    println!("\n=== procedural workflow `{}` ===", preheat.name);
    for action in &outcome.actions {
        println!("  actuate: {action}");
    }
    println!(
        "  ({} actions over {} simulated minutes)",
        outcome.actions.len(),
        outcome.waited_minutes
    );
}
