//! Closed-loop control: the planner drives a *live* thermal environment
//! where actuation has consequences — a heated room stays warm into the
//! next hour, so the counterfactual twin (what the room would have been
//! without IMCF) steadily diverges from the controlled room.
//!
//! A three-zone home runs for three January days under a tight daily
//! budget; we print one line per day plus the firewall's verdict counters.
//!
//! Run with: `cargo run --release --example closed_loop`

use imcf::core::calendar::PaperCalendar;
use imcf::core::candidate::{CandidateRule, PlanningSlot};
use imcf::core::{EnergyPlanner, PlannerConfig};
use imcf::devices::energy::DeviceEnergyModel;
use imcf::rules::action::{Action, DeviceClass};
use imcf::rules::meta_rule::RuleId;
use imcf::rules::mrt::Mrt;
use imcf::sim::engine::{Actuations, LiveSimulation, LiveZone};
use imcf::sim::weather::WeatherApi;
use imcf::traces::generator::ClimateModel;

fn main() {
    let calendar = PaperCalendar::january_start();
    let zones = ["living", "bedroom", "study"];
    let mut sim = LiveSimulation::new(
        zones
            .iter()
            .map(|z| LiveZone::flat_calibrated(z, 14.0))
            .collect(),
        WeatherApi::new(ClimateModel::mediterranean(), calendar, 11),
        calendar,
    );

    // Every zone runs the paper's Table II preferences.
    let mrt = Mrt::flat_table2(11_000.0);
    let hvac = imcf::devices::energy::HvacModel::split_unit_flat();
    let lamp = imcf::devices::energy::LightModel::led_array();

    // A deliberately tight allowance: 0.9 kWh per hour for the whole home.
    let hourly_budget = 0.9;
    let planner = EnergyPlanner::from_config(PlannerConfig::default());
    let mut rng = planner.rng();

    let mut daily_energy = 0.0;
    let mut daily_comfort_gap = 0.0;
    let mut reserve = 0.0f64;
    println!(
        "{:<6} {:>12} {:>22}",
        "day", "energy kWh", "mean room-vs-twin (°C)"
    );
    for h in 0..72u64 {
        let hour_of_day = calendar.hour_of_day(h);

        // Build the slot from the live ambients.
        let mut candidates = Vec::new();
        let mut targets: Vec<(String, DeviceClass, f64)> = Vec::new();
        for zone in &zones {
            let (ambient_c, ambient_light) = sim.ambient_preview(zone).expect("zone exists");
            for rule in mrt.active_at_hour(hour_of_day) {
                let (desired, ambient, class, kwh) = match rule.action {
                    Action::SetTemperature(v) => (
                        v,
                        ambient_c,
                        DeviceClass::Hvac,
                        hvac.hourly_kwh(v, ambient_c),
                    ),
                    Action::SetLight(v) => (
                        v,
                        ambient_light,
                        DeviceClass::Light,
                        lamp.hourly_kwh(v, ambient_light),
                    ),
                    Action::SetKwhLimit(_) => continue,
                };
                candidates.push(
                    CandidateRule::convenience(RuleId(targets.len() as u32), desired, ambient, kwh)
                        .in_zone(zone)
                        .for_class(class),
                );
                targets.push((zone.to_string(), class, desired));
            }
        }
        let slot = PlanningSlot::new(h, candidates, hourly_budget + reserve);
        let (bits, spent) = planner.plan_slot(&slot, &mut rng);
        reserve = (slot.budget_kwh - spent).max(0.0);

        // Apply the adopted actuations to the live environment.
        let mut actuations = Actuations::new();
        for (idx, adopted) in bits.iter().enumerate() {
            if adopted {
                let (zone, class, value) = targets[idx].clone();
                actuations.insert((zone, class), value);
            }
        }
        let report = sim.step(&actuations);
        daily_energy += report.energy_kwh;
        daily_comfort_gap += report
            .zones
            .iter()
            .map(|z| z.indoor_c - z.ambient_c)
            .sum::<f64>()
            / zones.len() as f64;

        if hour_of_day == 23 {
            let day = h / 24 + 1;
            println!(
                "{:<6} {:>12.2} {:>22.2}",
                day,
                daily_energy,
                daily_comfort_gap / 24.0
            );
            daily_energy = 0.0;
            daily_comfort_gap = 0.0;
        }
    }
    println!(
        "\n3-day total: {:.1} kWh metered (allowance {:.1} kWh); the warm gap is comfort IMCF bought",
        sim.meter().total_kwh(),
        72.0 * hourly_budget
    );
}
