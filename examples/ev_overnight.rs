//! Deferrable-workload scheduling (paper §V future work): charge an EV and
//! run the white goods inside the budget headroom the Energy Planner leaves
//! behind, placing each load into the greenest feasible hours.
//!
//! Run with: `cargo run --release --example ev_overnight`

use imcf::core::deferrable::{schedule_loads, DeferrableLoad, ScheduleContext};
use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
use imcf::devices::catalog::{ApplianceCycle, EvCharger, WaterHeater};
use imcf::sim::grid::GridIntensity;
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};

fn main() {
    // 1. Plan a 48-hour window of the flat with the usual pipeline.
    let dataset = Dataset::build(DatasetKind::Flat, 9);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    let planner = EnergyPlanner::from_config(PlannerConfig::default());

    // Headroom per hour = amortized allowance + EV top-up circuit (the car
    // charger has its own 3.7 kW circuit, but the *budget* is shared), minus
    // what the comfort rules consume.
    let window = 0..48u64;
    let grid = GridIntensity::solar_heavy();
    let mut headroom = Vec::with_capacity(48);
    for h in window.clone() {
        let slot = builder.slot_at(h);
        let spent = planner.plan(std::iter::once(slot.clone())).fe_kwh();
        // The household allows up to 4 kWh/h of total draw; comfort takes
        // its share first.
        headroom.push((4.0 - spent).max(0.0));
    }
    let cost = grid.series(dataset.calendar(), 48, 9);
    let mut ctx = ScheduleContext {
        headroom_kwh: headroom,
        cost_per_kwh: cost,
    };

    // 2. The household's shiftable loads, from the device catalog.
    let wallbox = EvCharger::wallbox_3_7kw();
    let boiler = WaterHeater::boiler_120l();
    let dishwasher = ApplianceCycle::dishwasher_eco();
    let washer = ApplianceCycle::washing_machine_40c();
    let loads = vec![
        DeferrableLoad::new(
            "EV charge (10 kWh into battery)",
            wallbox.power_kw,
            wallbox.hours_for(10.0),
            0,
            30,
        ),
        DeferrableLoad::new(
            &dishwasher.name,
            dishwasher.power_kw,
            dishwasher.duration_hours,
            8,
            22,
        ),
        DeferrableLoad::new(&washer.name, washer.power_kw, washer.duration_hours, 6, 20),
        DeferrableLoad::new(
            "water heater boost (+20°C)",
            boiler.power_kw,
            boiler.hours_to_heat(20.0),
            0,
            24,
        ),
    ];

    // 3. Schedule.
    match schedule_loads(&mut ctx, &loads) {
        Ok(placements) => {
            println!(
                "{:<24} {:>8} {:>10} {:>12}",
                "load", "start", "hours", "cost (CO₂)"
            );
            for (load, p) in loads.iter().zip(&placements) {
                println!(
                    "{:<24} {:>5}:00 {:>10} {:>12.2}",
                    p.name,
                    p.start % 24,
                    load.duration_hours,
                    p.cost
                );
            }
            let total: f64 = placements.iter().map(|p| p.cost).sum();
            println!("\ntotal weighted cost: {total:.2} (lower = greener placement)");
        }
        Err(e) => println!("scheduling failed: {e}"),
    }
}
