//! Quickstart: plan one month of a smart flat under an energy budget.
//!
//! Builds the paper's flat dataset, amortizes the three-year 11 000 kWh
//! budget with ECP shaping, plans the first month with the Energy Planner
//! and compares against the No-Rule / IFTTT / Meta-Rule baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use imcf::core::baselines::{run_ifttt, run_mr, run_nr};
use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};

fn main() {
    // 1. The dataset: synthetic CASAS-like traces for a one-bedroom flat.
    let dataset = Dataset::build(DatasetKind::Flat, 42);
    println!(
        "dataset: {} ({} zones, {} rules, {:.0} kWh budget over 3 years)",
        dataset.kind.label(),
        dataset.trace.zone_count(),
        dataset.total_rules(),
        dataset.budget_kwh
    );

    // 2. The Amortization Plan: derive the flat's consumption profile and
    //    shape the budget like it (the paper's EAF formula).
    let ecp = dataset.derive_mr_ecp();
    println!(
        "derived ECP: {:.0} kWh/year, January {:.0} kWh, July {:.0} kWh",
        ecp.total_kwh(),
        ecp.month_kwh(1),
        ecp.month_kwh(7)
    );
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );

    // 3. Plan the first month (744 hourly slots).
    let builder = SlotBuilder::new(&dataset, &plan);
    let month = || builder.range(0..744);

    let ep = EnergyPlanner::from_config(PlannerConfig::default()).plan(month());
    let nr = run_nr(month());
    let ifttt = run_ifttt(month());
    let mr = run_mr(month());

    println!("\nfirst month, four ways:");
    println!("{:<6} {:>10} {:>12}", "method", "F_CE (%)", "F_E (kWh)");
    for (name, fce, fe) in [
        ("NR", nr.fce_percent(), nr.fe_kwh()),
        ("IFTTT", ifttt.fce_percent(), ifttt.fe_kwh()),
        ("EP", ep.fce_percent(), ep.fe_kwh()),
        ("MR", mr.fce_percent(), mr.fe_kwh()),
    ] {
        println!("{:<6} {:>10.2} {:>12.1}", name, fce, fe);
    }
    println!(
        "\nEP kept {} of {} rule instances and saved {:.1} kWh vs greedy execution.",
        ep.instances - ep.dropped_instances,
        ep.instances,
        mr.fe_kwh() - ep.fe_kwh()
    );
}
