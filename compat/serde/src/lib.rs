//! In-tree, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serde-compatible surface: `Serialize` / `Deserialize`
//! traits routed through a JSON-shaped [`Value`] tree, plus derive macros
//! (re-exported from the in-tree `serde_derive` proc-macro crate) that
//! follow serde's data model for plain structs and enums — externally
//! tagged variants, newtype structs as their inner value, missing
//! `Option` fields as `None`.
//!
//! Only the surface this workspace actually uses is implemented; it is
//! not a general-purpose serde replacement.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// A JSON value tree — the interchange format of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` lifetime, usable as a missing-field
/// placeholder.
pub static NULL: Value = Value::Null;

impl Value {
    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup by key (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization / serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: owned deserialization marker.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned, Error};
}

/// Marker for types deserializable without borrowing from the input —
/// every [`Deserialize`] type here, since [`super::Value`] owns its data.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}

/// Support for derive-generated code. Not part of the public surface.
pub mod __private {
    use super::{Value, NULL};

    /// Looks a field up in an object body; missing fields read as `null`
    /// (so `Option` fields deserialize to `None`, everything else errors
    /// with a type mismatch, mirroring serde's missing-field handling).
    pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for std types.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::I64(n)) => Ok(*n as $t),
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::F64(n)) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::I64(n)) if *n >= 0 => Ok(*n as $t),
                    Value::Number(Number::F64(n)) if n.fract() == 0.0 && *n >= 0.0 => {
                        Ok(*n as $t)
                    }
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::F64(*self as f64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// JSON object keys: any serializable key whose value form is a string or
/// number maps to a string key (mirroring serde_json's behaviour for maps).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(Number::I64(n)) => n.to_string(),
        Value::Number(Number::U64(n)) => n.to_string(),
        Value::Number(Number::F64(n)) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

fn key_from_str<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::I64(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::U64(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::F64(n))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key `{key}`")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let secs = u64::from_value(__private::field(obj, "secs"))?;
        let nanos = u32::from_value(__private::field(obj, "nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::path::PathBuf::from(String::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Number(Number::U64(3)));
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(7u64, "x".to_string());
        let v = m.to_value();
        assert_eq!(v.get("7").and_then(Value::as_str), Some("x"));
        let back: BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
