//! In-tree stand-in for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! The block function is the standard ChaCha quarter-round network with 8
//! rounds; `seed_from_u64` expands the seed with SplitMix64 into the key
//! words. Streams are deterministic per seed but are not bit-identical to
//! the upstream crate (nothing in this workspace depends on the exact
//! upstream stream, only on per-seed determinism).

use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
///
/// The full generator state (input block, current output block, word
/// cursor) serializes with serde, so a checkpointed RNG resumes its
/// stream exactly where the original left off — the property the
/// controller's crash-recovery layer depends on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 means "refill".
    word: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.word = 0;
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * i] = w as u32;
            state[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_resumes_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn serde_round_trip_resumes_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..7 {
            a.next_u32();
        }
        let value = serde::Serialize::to_value(&a);
        let mut b = <ChaCha8Rng as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(a, b);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "restored RNG must continue the same stream");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64k bits, expect ~32k set; allow wide slack.
        assert!((30_000..34_000).contains(&ones), "bit bias: {ones}");
    }
}
