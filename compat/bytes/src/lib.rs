//! In-tree stand-in for `bytes`.
//!
//! Provides the little-endian cursor reading ([`Buf`] on `&[u8]`) and
//! growable write buffer ([`BytesMut`] + [`BufMut`]) surface the store's
//! WAL uses. `BytesMut` is a thin wrapper over `Vec<u8>`; zero-copy
//! splitting is not implemented because nothing here needs it.

use std::ops::{Deref, DerefMut};

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u32` and advances past it.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64` and advances past it.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Consumes the buffer as a plain `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut(src.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(3);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 11);

        let mut cursor = &buf[..];
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u32_le(), 3);
        assert_eq!(&cursor[..3], b"abc");
        cursor.advance(3);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.advance(3);
    }

    #[test]
    fn u64_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX - 7);
        let mut cursor = &buf[..];
        assert_eq!(cursor.get_u64_le(), u64::MAX - 7);
    }
}
