//! In-tree, offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range / tuple /
//! `Just` / `prop_oneof!` / mapped / recursive strategies,
//! `proptest::collection::vec`, `proptest::bool::weighted` and the
//! `prop_assert*` macros. Cases are sampled deterministically (seeded per
//! test name); failures report the case number but are not shrunk.

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::fmt;

    /// The RNG driving strategy sampling.
    pub type TestRng = ChaCha8Rng;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-(test, case) RNG. `PROPTEST_RNG_SEED` perturbs
    /// the base seed for exploratory reruns.
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ extra)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// smaller depth and returns the composite level. Leaves stay
        /// reachable at every level.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut current = boxed(self.clone());
            for _ in 0..depth {
                current = boxed(Union::new(vec![boxed(self.clone()), boxed(f(current))]));
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            boxed(self)
        }
    }

    /// A shared type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Boxes a strategy behind a shared pointer.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        BoxedStrategy(Rc::new(s))
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A mapped strategy (`prop_map`).
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].sample(rng)
        }
    }

    /// One parsed regex atom: candidate chars plus a repetition range.
    struct PatternAtom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses the regex subset used as string strategies: literal chars and
    /// `[a-z0-9_]` classes, each optionally followed by `{m}`, `{m,n}`,
    /// `?`, `+` or `*`.
    fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
        let mut atoms = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = if c == '[' {
                let mut class: Vec<char> = Vec::new();
                for d in it.by_ref() {
                    if d == ']' {
                        break;
                    }
                    class.push(d);
                }
                let mut set = Vec::new();
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        for r in class[i]..=class[i + 2] {
                            set.push(r);
                        }
                        i += 3;
                    } else {
                        set.push(class[i]);
                        i += 1;
                    }
                }
                set
            } else {
                vec![c]
            };
            let (min, max) = match it.peek() {
                Some('{') => {
                    it.next();
                    let spec: String = it.by_ref().take_while(|&d| d != '}').collect();
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition"),
                            hi.trim().parse().expect("bad repetition"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repetition");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    it.next();
                    (0, 1)
                }
                Some('+') => {
                    it.next();
                    (1, 8)
                }
                Some('*') => {
                    it.next();
                    (0, 8)
                }
                _ => (1, 1),
            };
            assert!(!chars.is_empty(), "empty character class in {pattern:?}");
            atoms.push(PatternAtom { chars, min, max });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let n = rng.gen_range(atom.min..=atom.max);
                for _ in 0..n {
                    out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
                }
            }
            out
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e6..1.0e6)
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// The inclusive (min, max) element count.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// The strategy behind [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy behind [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{}` == `{}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// A uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, bool)> {
        (0u8..10, any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -2i64..=2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_and_map(m in prop_oneof![Just(1u8), 2u8..4, Just(9u8)].prop_map(|x| x as u32)) {
            prop_assert!(m == 1 || m == 2 || m == 3 || m == 9);
        }

        #[test]
        fn tuples_work(p in arb_pair()) {
            prop_assert!(p.0 < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        impl Tree {
            fn leaf_sum(&self) -> u32 {
                match self {
                    Tree::Leaf(v) => u32::from(*v),
                    Tree::Node(a, b) => a.leaf_sum() + b.leaf_sum(),
                }
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::rng_for("recursion", 0);
        for _ in 0..50 {
            let tree = strat.sample(&mut rng);
            // Leaves draw from 0..10, so any sum stays below 10 per leaf.
            assert!(tree.leaf_sum() < 10 * 32);
        }
    }
}
