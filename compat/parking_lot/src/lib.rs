//! In-tree stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind the `parking_lot` API
//! shape this workspace uses: infallible `lock()` / `read()` / `write()`
//! with no poisoning (a poisoned std lock is recovered, matching
//! parking_lot's behaviour of not propagating panics through locks).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with infallible, non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with infallible `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_panic_in_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poison error, lock still usable.
        assert_eq!(*m.lock(), 1);
    }
}
