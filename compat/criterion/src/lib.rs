//! In-tree stand-in for `criterion`.
//!
//! A minimal wall-clock harness with the same authoring surface the bench
//! crate uses (`criterion_group!` / `criterion_main!`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`). It times `sample_size` samples of an auto-calibrated
//! iteration batch and prints mean/min per-iteration times — no statistics
//! engine, no HTML reports, no CLI argument parsing beyond ignoring the
//! harness flags the cargo bench runner passes.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(v: T) -> T {
    hint::black_box(v)
}

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs one plain benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("bench"),
        }
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Picks an iteration count so one sample takes roughly 5 ms, then times
/// `samples` batches and prints a one-line summary.
fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Calibrate: grow the batch until it costs at least ~1 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            let per = b.elapsed.as_nanos().max(1) as u64 / iters;
            iters = (5_000_000 / per.max(1)).clamp(1, 1 << 22);
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<48} mean {:>12} min {:>12} ({samples} samples x {iters} iters)",
        format_ns(mean),
        format_ns(min),
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, targets...)`
/// or the struct-ish form with an explicit `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // `--help`-style invocation should not run the benches.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("hill", 28).to_string(), "hill/28");
        assert_eq!(BenchmarkId::from_parameter(200).to_string(), "200");
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let input = 7u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
