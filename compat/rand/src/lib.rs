//! In-tree, dependency-free stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension (ranges and Bernoulli draws) and
//! [`seq::index::sample`] — with the concrete generator supplied by the
//! in-tree `rand_chacha` crate. Sampling is uniform enough for simulation
//! and property tests; it does not promise bit-compatibility with the real
//! `rand` streams.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// The next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range drawable by [`Rng::gen_range`]; keyed on the element type `T`
/// so call sites infer the element from context (as in real `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = unit_f64(rng);
                (self.start as f64 + f * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "gen_range: empty range");
                let f = unit_f64(rng);
                (lo + f * (hi - lo)) as $t
            }
        }
    )*};
}

// f64 only: an f32 impl would make `gen_range(-1.0..1.0)` ambiguous at
// call sites that rely on float-literal fallback.
uniform_float!(f64);

/// Types drawable by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardDraw {
    /// Draws one value from the standard distribution.
    fn standard_draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDraw for f64 {
    fn standard_draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl StandardDraw for f32 {
    fn standard_draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl StandardDraw for bool {
    fn standard_draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDraw for u32 {
    fn standard_draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardDraw for u64 {
    fn standard_draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Convenience draws on top of [`RngCore`].
pub trait Rng: RngCore {
    /// A draw from the standard distribution (floats in `[0, 1)`).
    fn gen<T: StandardDraw>(&mut self) -> T {
        T::standard_draw(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence sampling helpers.
pub mod seq {
    /// Index sampling (the `rand::seq::index` module).
    pub mod index {
        use crate::{Rng, RngCore};

        /// Distinct indices drawn from `0..length`.
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Draws `amount` distinct indices uniformly from `0..length`
        /// using Floyd's algorithm — O(amount) expected work, no O(length)
        /// shuffle.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for i in (length - amount)..length {
                let t = rng.gen_range(0..=i);
                if chosen.contains(&t) {
                    chosen.push(i);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-3..7);
            assert!((-3..7).contains(&v));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(0u8..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn sample_is_distinct() {
        let mut rng = Lcg(7);
        for _ in 0..200 {
            let picked = seq::index::sample(&mut rng, 10, 4).into_vec();
            assert_eq!(picked.len(), 4);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
            assert!(picked.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
