//! In-tree, dependency-free stand-in for `serde_json`.
//!
//! Serializes the in-tree `serde` crate's [`Value`] tree to JSON text and
//! parses it back. Floats print via Rust's shortest-round-trip `Display`
//! (integral floats print a trailing `.0` like the real serde_json), so
//! values survive a text round-trip exactly.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0)?;
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse(s)?)
}

/// Parses JSON bytes into any deserializable value.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] literally. Keys must be string literals; values are
/// arbitrary serializable expressions, `null`, or nested `[...]` arrays.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) -> Result<()> {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(out, item, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
            Ok(())
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
            Ok(())
        }
        other => write_value(out, other),
    }
}

fn write_number(out: &mut String, n: &Number) -> Result<()> {
    match *n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            if v.fract() == 0.0 && v.abs() < 1e16 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let n = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if let Ok(v) = text.parse::<i64>() {
            Number::I64(v)
        } else if let Ok(v) = text.parse::<u64>() {
            Number::U64(v)
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("0.1").unwrap(), 0.1);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1u32, "b": "x", "c": Option::<f64>::None });
        let text = to_string(&v).unwrap();
        assert!(text.contains("\"a\":1"));
        assert!(text.contains("\"c\":null"));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"x":[1,2.5,null,{"y":"z"}],"w":true}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v).unwrap();
        assert_eq!(parse(&out).unwrap(), v);
    }
}
