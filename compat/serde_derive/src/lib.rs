//! In-tree `serde_derive` stand-in.
//!
//! Generates `Serialize` / `Deserialize` impls for plain structs and enums
//! against the Value-tree traits of the in-tree `serde` crate. The parser
//! walks the raw token stream (no `syn`/`quote` available offline) and the
//! generators emit Rust source strings, so it supports exactly the shapes
//! this workspace uses: named/tuple/unit structs, enums with unit, tuple
//! and struct variants, and simple `<T>` type parameters. `#[serde(...)]`
//! attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Item {
    name: String,
    type_params: Vec<String>,
    kind: Kind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(_)) = self.peek() {
                self.pos += 1; // '[...]'
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1; // pub(crate) etc.
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes a `<...>` generics list (cursor must be at `<`) and returns
    /// the type parameter names, skipping lifetimes, bounds and defaults.
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        let mut depth = 0usize;
        let mut at_param_start = false;
        let mut skipping_segment = false;
        loop {
            let Some(tok) = self.next() else {
                panic!("serde_derive: unterminated generics");
            };
            match tok {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => {
                        depth += 1;
                        if depth == 1 {
                            at_param_start = true;
                            skipping_segment = false;
                        }
                    }
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return params;
                        }
                    }
                    ',' if depth == 1 => {
                        at_param_start = true;
                        skipping_segment = false;
                    }
                    '\'' if depth == 1 && at_param_start => {
                        // Lifetime parameter: skip the following ident.
                        self.next();
                        at_param_start = false;
                        skipping_segment = true;
                    }
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && at_param_start && !skipping_segment => {
                    let s = id.to_string();
                    if s == "const" {
                        // Const parameter: record nothing, skip its name.
                        self.next();
                    } else {
                        params.push(s);
                    }
                    at_param_start = false;
                    skipping_segment = true;
                }
                _ => {}
            }
        }
    }
}

/// Counts top-level comma-separated segments in a token stream, treating
/// `<...>` angle regions as nested (parens/brackets/braces are already
/// atomic groups in the token tree).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1usize;
    let mut angle = 0usize;
    let mut last_was_comma = false;
    for tok in &tokens {
        last_was_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    fields += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if last_was_comma {
        fields -= 1; // trailing comma
    }
    fields
}

/// Parses the field names out of a `{ ... }` struct body stream.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            return names;
        }
        c.skip_visibility();
        names.push(c.expect_ident());
        // Expect ':' then skip the type until a top-level comma.
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field name, found {other:?}"),
        }
        let mut angle = 0usize;
        loop {
            match c.peek() {
                None => return names,
                Some(TokenTree::Punct(p)) => {
                    let ch = p.as_char();
                    c.pos += 1;
                    match ch {
                        '<' => angle += 1,
                        '>' => angle = angle.saturating_sub(1),
                        ',' if angle == 0 => break,
                        _ => {}
                    }
                }
                Some(_) => c.pos += 1,
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            return variants;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                c.pos += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        loop {
            match c.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push((name, fields));
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    let type_params = match c.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => c.parse_generics(),
        _ => Vec::new(),
    };
    // Skip an optional where clause: everything up to the body.
    let kind = loop {
        match c.peek() {
            None => break Kind::Struct(Fields::Unit), // `struct S;` ends the stream
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                break Kind::Struct(Fields::Unit);
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                break Kind::Struct(Fields::Tuple(n));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                break if keyword == "enum" {
                    Kind::Enum(parse_variants(stream))
                } else {
                    Kind::Struct(Fields::Named(parse_named_fields(stream)))
                };
            }
            Some(_) => c.pos += 1, // inside a where clause
        }
    };
    Item {
        name,
        type_params,
        kind,
    }
}

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Name<T>` pieces.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.type_params.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .type_params
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let plain = item.type_params.join(", ");
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", item.name, plain),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, self_ty) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pushes: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            pushes.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {self_ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, self_ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             _ => ::std::result::Result::Err(::serde::Error::custom(\"expected null for {name}\")) }}"
        ),
        Kind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"arity mismatch for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__obj, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                             let __arr = __payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"arity mismatch for {name}::{v}\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            elems.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__obj, \"{f}\"))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                             let __obj = __payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {}\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__s}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = &__m[0];\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__tag}}`\"))),\n\
                 }}\n\
                 }}\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-key object for {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {self_ty} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` (Value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (Value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
