//! In-tree stand-in for `tempfile` — only [`tempdir`] / [`TempDir`].
//!
//! Directories are created under `std::env::temp_dir()` with a
//! pid + counter + clock suffix so concurrent test processes cannot
//! collide, and removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary directory deleted (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort; a failed cleanup must not panic a passing test.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    for _ in 0..64 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!(".imcf-tmp-{}-{n}-{nanos:09}", std::process::id()));
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(
        io::ErrorKind::AlreadyExists,
        "could not create a unique temporary directory",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept_path;
        {
            let dir = tempdir().unwrap();
            kept_path = dir.path().to_path_buf();
            assert!(kept_path.is_dir());
            fs::write(kept_path.join("nested.txt"), b"x").unwrap();
            fs::create_dir(kept_path.join("sub")).unwrap();
            fs::write(kept_path.join("sub/deep.txt"), b"y").unwrap();
        }
        assert!(!kept_path.exists(), "drop should remove the tree");
    }

    #[test]
    fn distinct_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
