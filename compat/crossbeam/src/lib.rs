//! In-tree stand-in for `crossbeam` — only the [`channel`] module.
//!
//! Implements unbounded MPMC channels over a `Mutex<VecDeque>` and a
//! `Condvar`. Semantics follow crossbeam where this workspace relies on
//! them: senders and receivers are cloneable, `send` fails once every
//! receiver is gone, `recv` blocks and fails once every sender is gone and
//! the queue has drained.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the undelivered message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().unwrap().push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }

        /// Messages currently queued (undelivered backlog).
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap();
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterator draining currently-available messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let h = thread::spawn(move || rx.recv());
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(h.join().unwrap(), Ok(9));
        }

        #[test]
        fn disconnected_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_throughput() {
            let (tx, rx) = unbounded();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..250 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            for h in producers {
                h.join().unwrap();
            }
            let mut n = 0;
            while rx.recv().is_ok() {
                n += 1;
            }
            assert_eq!(n, 1000);
        }
    }
}
