//! # imcf — The IoT Meta-Control Firewall
//!
//! A from-scratch Rust reproduction of *"The IoT Meta-Control Firewall"*
//! (Constantinou, Konstantinidis, Zeinalipour-Yazti, Chrysanthis —
//! ICDE 2021): a budget-aware filter for Rule Automation Workflows that
//! balances user convenience against a long-term energy objective.
//!
//! The facade re-exports every subsystem:
//!
//! * [`core`] — the Energy Planner (EP) and Amortization Plan (AP)
//!   algorithms, objectives, optimizers and baselines;
//! * [`rules`] — meta-rules, IFTTT trigger-action rules, predicates and
//!   procedural workflows;
//! * [`devices`] — the openHAB-like thing/item/channel substrate and device
//!   energy models;
//! * [`sim`] — the environment simulator (weather, thermal, buildings,
//!   datasets, slot building);
//! * [`traces`] — CASAS-style trace synthesis and handling;
//! * [`store`] — the embedded WAL-backed persistence layer;
//! * [`controller`] — the Local Controller with the meta-control firewall.
//!
//! ## Quickstart
//!
//! ```
//! use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
//! use imcf::sim::{Dataset, DatasetKind, SlotBuilder};
//!
//! // Build the paper's flat dataset (synthetic CASAS-like traces).
//! let dataset = Dataset::build(DatasetKind::Flat, 0);
//! let ecp = dataset.derive_mr_ecp();
//!
//! // Amortize the 3-year 11 000 kWh budget with ECP shaping (EAF).
//! let plan = AmortizationPlan::new(
//!     ApKind::Eaf, ecp, dataset.budget_kwh, dataset.horizon_hours, dataset.calendar(),
//! );
//!
//! // Plan one week of slots with the hill-climbing Energy Planner.
//! let builder = SlotBuilder::new(&dataset, &plan);
//! let planner = EnergyPlanner::from_config(PlannerConfig::default());
//! let report = planner.plan(builder.range(0..168));
//! assert!(report.fce_percent() < 100.0);
//! ```

pub use imcf_controller as controller;
pub use imcf_core as core;
pub use imcf_devices as devices;
pub use imcf_rules as rules;
pub use imcf_sim as sim;
pub use imcf_store as store;
pub use imcf_traces as traces;
