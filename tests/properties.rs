//! Cross-crate property-based tests: invariants of the planner, objectives
//! and amortization under arbitrary inputs.

use imcf::core::amortization::{AmortizationPlan, ApKind};
use imcf::core::baselines::{run_mr, run_nr};
use imcf::core::calendar::{PaperCalendar, HOURS_PER_YEAR};
use imcf::core::candidate::{CandidateRule, PlanningSlot};
use imcf::core::ecp::Ecp;
use imcf::core::init::InitStrategy;
use imcf::core::objective::{convenience_error_fraction, evaluate};
use imcf::core::optimizer::{HillClimbing, Optimizer};
use imcf::core::solution::Solution;
use imcf::core::{EnergyPlanner, PlannerConfig};
use imcf::rules::meta_rule::RuleId;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_candidate() -> impl Strategy<Value = CandidateRule> {
    (
        0u32..64,
        5.0f64..40.0,
        -5.0f64..45.0,
        0.0f64..2.0,
        proptest::bool::weighted(0.15),
    )
        .prop_map(|(id, desired, ambient, kwh, necessity)| {
            let mut c = CandidateRule::convenience(RuleId(id), desired, ambient, kwh);
            c.necessity = necessity;
            c
        })
}

fn arb_slot() -> impl Strategy<Value = PlanningSlot> {
    (
        proptest::collection::vec(arb_candidate(), 0..12),
        0.0f64..6.0,
    )
        .prop_map(|(candidates, budget)| PlanningSlot::new(0, candidates, budget))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The convenience-error fraction is always a valid fraction, zero when
    /// the desire is met or exceeded, and monotone in the deficiency.
    #[test]
    fn ce_fraction_bounds(desired in -100.0f64..100.0, actual in -100.0f64..100.0) {
        let ce = convenience_error_fraction(desired, actual);
        prop_assert!((0.0..=1.0).contains(&ce));
        if actual.abs() >= desired.abs() {
            prop_assert_eq!(ce, 0.0);
        }
    }

    /// Evaluation is consistent: energy is the sum of adopted costs and the
    /// error sum counts only dropped candidates.
    #[test]
    fn evaluation_consistency(slot in arb_slot()) {
        let n = slot.len();
        let all = evaluate(&slot, &Solution::all_ones(n));
        prop_assert!((all.energy_kwh - slot.max_energy()).abs() < 1e-9);
        prop_assert_eq!(all.ce_sum, 0.0);
        let none = evaluate(&slot, &Solution::all_zeros(n));
        prop_assert_eq!(none.energy_kwh, 0.0);
        prop_assert!(none.ce_sum <= n as f64 + 1e-9);
    }

    /// Whatever the slot, the hill climber returns a solution that (a)
    /// keeps every necessity rule, and (b) respects the budget whenever the
    /// necessity-only fallback respects it.
    #[test]
    fn optimizer_respects_necessity_and_budget(slot in arb_slot(), seed in 0u64..16) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let hc = HillClimbing::new(2, 60);
        let (bits, obj) = hc.optimize(&slot, Solution::all_ones(slot.len()), &mut rng);
        for (candidate, adopted) in slot.candidates.iter().zip(bits.iter()) {
            if candidate.necessity {
                prop_assert!(adopted, "necessity rule dropped");
            }
        }
        if slot.necessity_energy() <= slot.budget_kwh {
            prop_assert!(obj.feasible(slot.budget_kwh), "feasible fallback exists but result is infeasible");
        }
    }

    /// Over any horizon of slots, the planner's convenience error is
    /// bracketed by the MR and NR extremes, and with carry-over its total
    /// energy never exceeds the summed allowances.
    #[test]
    fn planner_bracketed_by_extremes(slots in proptest::collection::vec(arb_slot(), 1..12)) {
        let planner = EnergyPlanner::from_config(PlannerConfig { tau_max: 40, ..Default::default() });
        let ep = planner.plan(slots.clone());
        let mr = run_mr(slots.clone());
        let nr = run_nr(slots.clone());
        prop_assert!(ep.fce_percent() >= mr.fce_percent() - 1e-9);
        prop_assert!(ep.fce_percent() <= nr.fce_percent() + 1e-9);
        let allowance: f64 = slots.iter().map(|s| s.budget_kwh).sum();
        let necessity: f64 = slots.iter().map(|s| s.necessity_energy()).sum();
        prop_assert!(ep.fe_kwh() <= allowance + necessity + 1e-9);
    }

    /// LAF and EAF allocate exactly the budget across any horizon of whole
    /// years, for any scaling of the Table I profile.
    #[test]
    fn amortization_conserves_budget(budget in 10.0f64..1e6, years in 1u64..4, scale in 0.1f64..10.0) {
        let ecp = Ecp::flat_table1().scaled(scale);
        for kind in [ApKind::Laf, ApKind::Eaf] {
            let plan = AmortizationPlan::new(
                kind,
                ecp.clone(),
                budget,
                years * HOURS_PER_YEAR,
                PaperCalendar::january_start(),
            );
            let total = plan.total_allocated();
            prop_assert!((total - budget).abs() < budget * 1e-9 + 1e-6, "total {total} vs budget {budget}");
        }
    }

    /// Savings scale allocations linearly.
    #[test]
    fn savings_scale_linearly(savings in 0.0f64..0.9) {
        let base = AmortizationPlan::new(
            ApKind::Eaf,
            Ecp::flat_table1(),
            1000.0,
            HOURS_PER_YEAR,
            PaperCalendar::january_start(),
        );
        let saving = base.clone().with_savings(savings);
        for h in [0u64, 1000, 5000] {
            prop_assert!((saving.hourly_budget(h) - base.hourly_budget(h) * (1.0 - savings)).abs() < 1e-12);
        }
    }

    /// Initialization strategies always produce vectors of the right arity,
    /// and the deterministic ones are what they claim.
    #[test]
    fn init_arity(n in 0usize..64, seed in 0u64..32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for init in [InitStrategy::AllOnes, InitStrategy::AllZeros, InitStrategy::Random] {
            let s = init.generate(n, &mut rng);
            prop_assert_eq!(s.len(), n);
        }
    }
}
