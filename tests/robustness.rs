//! Failure-injection tests: the planning pipeline under sensor outages and
//! degraded configurations.

use imcf::core::baselines::run_mr;
use imcf::core::calendar::HOURS_PER_MONTH;
use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};
use imcf::traces::outage::{Outage, OutagePlan};

/// A dataset whose sensors black out now and then still plans: the stale
/// ambients shift cost estimates but never break feasibility, and the
/// convenience degradation stays bounded by the outage share.
#[test]
fn planner_survives_sensor_outages() {
    let healthy = Dataset::build(DatasetKind::Flat, 0);
    let plan_budget = |d: &Dataset| {
        let ecp = d.derive_mr_ecp();
        AmortizationPlan::new(
            ApKind::Eaf,
            ecp,
            d.budget_kwh,
            d.horizon_hours,
            d.calendar(),
        )
    };

    // Break ~5 % of the horizon in multi-hour outages.
    let outages = OutagePlan::sample(healthy.horizon_hours, 8.0, 12, 42);
    let outage_share =
        outages.total_hours(healthy.horizon_hours) as f64 / healthy.horizon_hours as f64;
    assert!(
        outage_share > 0.005,
        "outage plan too light to test anything"
    );

    let mut broken = healthy.clone();
    broken.trace = outages.apply_to_trace(&healthy.trace);

    let window = 3 * HOURS_PER_MONTH..6 * HOURS_PER_MONTH; // one winter quarter

    let healthy_plan = plan_budget(&healthy);
    let broken_plan = plan_budget(&broken);
    let healthy_builder = SlotBuilder::new(&healthy, &healthy_plan);
    let broken_builder = SlotBuilder::new(&broken, &broken_plan);

    let planner = EnergyPlanner::from_config(PlannerConfig::default());
    let healthy_report = planner.plan(healthy_builder.range(window.clone()));
    let broken_report = planner.plan(broken_builder.range(window.clone()));

    // Still plans every slot and keeps energy in the same band.
    assert_eq!(broken_report.slots, healthy_report.slots);
    assert!(broken_report.fe_kwh() > 0.0);
    let energy_drift =
        (broken_report.fe_kwh() - healthy_report.fe_kwh()).abs() / healthy_report.fe_kwh();
    assert!(
        energy_drift < 0.15,
        "energy drift {:.1} % under {:.1} % outages",
        energy_drift * 100.0,
        outage_share * 100.0
    );

    // Convenience error stays in the same regime (stale readings can help
    // or hurt individual hours, but not blow up the plan).
    assert!(broken_report.fce_percent() < healthy_report.fce_percent() + 5.0);
}

/// A total blackout of one zone degrades gracefully: the frozen readings
/// still produce finite candidates and the MR cost stays finite.
#[test]
fn full_zone_blackout_is_finite() {
    let dataset = Dataset::build(DatasetKind::Flat, 1);
    let blackout = OutagePlan::from_windows(vec![Outage {
        start: 0,
        hours: dataset.horizon_hours,
    }]);
    let mut broken = dataset.clone();
    broken.trace = blackout.apply_to_trace(&dataset.trace);
    let ecp = broken.derive_mr_ecp();
    assert!(ecp.total_kwh().is_finite());
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        broken.budget_kwh,
        broken.horizon_hours,
        broken.calendar(),
    );
    let builder = SlotBuilder::new(&broken, &plan);
    let mr = run_mr(builder.range(0..168));
    assert!(mr.fe_kwh().is_finite() && mr.fe_kwh() > 0.0);
}

/// Outage injection composes with the scaled datasets.
#[test]
fn outages_on_multi_zone_dataset() {
    let dataset = Dataset::build(DatasetKind::House, 2);
    let outages = OutagePlan::sample(dataset.horizon_hours, 4.0, 8, 9);
    let mut broken = dataset.clone();
    broken.trace = outages.apply_to_trace(&dataset.trace);
    assert_eq!(broken.trace.zone_count(), 4);
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        broken.derive_mr_ecp(),
        broken.budget_kwh,
        broken.horizon_hours,
        broken.calendar(),
    );
    let builder = SlotBuilder::new(&broken, &plan);
    let report = EnergyPlanner::from_config(PlannerConfig::default()).plan(builder.range(0..240));
    assert_eq!(report.slots, 240);
}
