//! End-to-end pipeline tests spanning every crate: trace synthesis → CSV →
//! resampling → dataset → controller orchestration → persistence →
//! recovery.

use imcf::controller::{ControllerConfig, LocalController, TickSummary};
use imcf::core::calendar::PaperCalendar;
use imcf::core::{AmortizationPlan, ApKind};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};
use imcf::store::Store;
use imcf::traces::csvio::{read_csv, write_csv};
use imcf::traces::generator::{ClimateModel, TraceGenerator};
use imcf::traces::series::Trace;

#[test]
fn raw_trace_csv_round_trip_preserves_hourly_series() {
    let generator = TraceGenerator {
        climate: ClimateModel::mediterranean(),
        calendar: PaperCalendar::january_start(),
        horizon_hours: 72,
        seed: 11,
    };
    let readings = generator.raw_readings("flat", 300);

    // Through CSV and back.
    let mut buf = Vec::new();
    write_csv(&mut buf, &readings).unwrap();
    let back = read_csv(&buf[..]).unwrap();
    assert_eq!(readings, back);

    // Resampled hourly series track the generator's direct series within
    // the raw-read jitter.
    let direct = generator.generate_zone("flat");
    let resampled = Trace::from_readings(PaperCalendar::january_start(), &back, 72);
    let zone = resampled.zone("flat").unwrap();
    for h in 0..72 {
        let d = direct.temperature.at(h);
        let r = zone.temperature.at(h);
        assert!(
            (d - r).abs() < 0.5,
            "hour {h}: direct {d:.2} vs resampled {r:.2}"
        );
    }
}

#[test]
fn controller_over_dataset_slots_with_persistence_and_recovery() {
    let dataset = Dataset::build(DatasetKind::House, 1);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);

    let mut controller = LocalController::new(ControllerConfig::default(), dataset.calendar());
    for zone in &dataset.trace.zones {
        controller.provision_zone(&zone.zone).unwrap();
    }

    let dir = tempfile::tempdir().unwrap();
    let total_energy;
    {
        let store = Store::open(dir.path()).unwrap();
        let mut ticks = store.table::<TickSummary>("ticks").unwrap();
        for slot in builder.range(0..48) {
            let summary = controller.tick(&slot);
            assert_eq!(summary.adopted.len() + summary.dropped.len(), slot.len());
            ticks.insert(summary).unwrap();
        }
        ticks.sync().unwrap();
        assert_eq!(ticks.len(), 48);
        total_energy = controller.meter().total_kwh();
        assert!(total_energy > 0.0);
    }

    // Reopen the store: the tick log replays from the WAL.
    let store = Store::open(dir.path()).unwrap();
    let ticks = store.table::<TickSummary>("ticks").unwrap();
    assert_eq!(ticks.len(), 48);
    let replayed_energy: f64 = ticks.scan().map(|(_, t)| t.energy_kwh).sum();
    assert!((replayed_energy - total_energy).abs() < 1e-9);
}

#[test]
fn controller_reserve_carries_budget_across_ticks() {
    let dataset = Dataset::build(DatasetKind::Flat, 2);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);

    let mut controller = LocalController::new(ControllerConfig::default(), dataset.calendar());
    controller.provision_zone("zone000").unwrap();

    // Hour 0 of the trace is midnight: no rules are active, so the whole
    // allowance banks into the reserve.
    let empty = builder.slot_at(0);
    assert!(empty.is_empty());
    let before = controller.reserve_kwh();
    controller.tick(&empty);
    assert!(controller.reserve_kwh() > before);
}

#[test]
fn firewall_blocks_manual_overrides_of_dropped_zones() {
    use imcf::core::candidate::{CandidateRule, PlanningSlot};
    use imcf::devices::channel::ChannelUid;
    use imcf::devices::command::{Command, CommandOutcome, CommandPayload};
    use imcf::devices::thing::ThingUid;
    use imcf::rules::meta_rule::RuleId;

    let mut controller =
        LocalController::new(ControllerConfig::default(), PaperCalendar::january_start());
    controller.provision_zone("den").unwrap();
    // A zero-budget slot forces the plan to drop the den's HVAC rule.
    let slot = PlanningSlot::new(
        0,
        vec![CandidateRule::convenience(RuleId(0), 24.0, 10.0, 0.9).in_zone("den")],
        0.0,
    );
    let summary = controller.tick(&slot);
    assert_eq!(summary.dropped.len(), 1);

    // A user trying to bypass the plan through the registry is stopped by
    // the same chain — the "meta-control firewall" behaviour of the paper.
    let cmd = Command::binding(
        ChannelUid::new(ThingUid::new("imcf", "hvac", "den"), "settemp"),
        CommandPayload::SetTemperature {
            celsius: 30.0,
            cooling: false,
        },
    );
    assert_eq!(
        controller.registry().dispatch(&cmd).unwrap(),
        CommandOutcome::Blocked
    );
}

#[test]
fn mrt_text_config_drives_the_pipeline() {
    use imcf::rules::parse::parse_mrt;

    // A user-authored MRT file…
    let text = "\
Night Heat | 01:00 - 07:00 | Set Temperature | 25 | owner=father
Morning Lights | 04:00 - 09:00 | Set Light | 40 | owner=mother
Budget | for 3 years | Set kWh Limit | 11000
";
    let mrt = parse_mrt(text).unwrap();

    // …replaces the dataset's built-in MRT.
    let mut dataset = Dataset::build(DatasetKind::Flat, 0);
    dataset.zone_mrts = vec![mrt];
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    let slot = builder.slot_at(5); // 05:00: both rules active
    assert_eq!(slot.len(), 2);
    let owners: Vec<&str> = slot.candidates.iter().map(|c| c.owner.as_str()).collect();
    assert_eq!(owners, vec!["father", "mother"]);
}
