//! Closed-loop integration: the planner driving the live thermal engine,
//! and the unified rule engine feeding the controller.

use imcf::core::calendar::PaperCalendar;
use imcf::core::candidate::{CandidateRule, PlanningSlot};
use imcf::core::{EnergyPlanner, PlannerConfig};
use imcf::devices::energy::DeviceEnergyModel;
use imcf::rules::action::{Action, DeviceClass};
use imcf::rules::engine::RuleEngine;
use imcf::rules::ifttt::IftttTable;
use imcf::rules::meta_rule::RuleId;
use imcf::rules::mrt::Mrt;
use imcf::sim::engine::{Actuations, LiveSimulation, LiveZone};
use imcf::sim::weather::WeatherApi;
use imcf::traces::generator::ClimateModel;

fn winter_sim(zones: &[&str]) -> LiveSimulation {
    let calendar = PaperCalendar::january_start();
    LiveSimulation::new(
        zones
            .iter()
            .map(|z| LiveZone::flat_calibrated(z, 15.0))
            .collect(),
        WeatherApi::new(ClimateModel::mediterranean(), calendar, 4),
        calendar,
    )
}

/// A generous budget lets the planner hold Table II comfort in a live room:
/// after a day the controlled room sits near the setpoints while the twin
/// drifts with the weather, and the metered energy matches the plan.
#[test]
fn planner_holds_comfort_in_the_live_engine() {
    let mut sim = winter_sim(&["den"]);
    let mrt = Mrt::flat_table2(11_000.0);
    let hvac = imcf::devices::energy::HvacModel::split_unit_flat();
    let planner = EnergyPlanner::from_config(PlannerConfig::default());
    let mut rng = planner.rng();

    let mut comfort_hours = 0;
    for h in 0..48u64 {
        let hour_of_day = (h % 24) as u32;
        let (ambient_c, _light) = sim.ambient_preview("den").unwrap();
        let mut candidates = Vec::new();
        let mut targets = Vec::new();
        for rule in mrt.active_at_hour(hour_of_day) {
            if let Action::SetTemperature(v) = rule.action {
                candidates.push(
                    CandidateRule::convenience(
                        RuleId(targets.len() as u32),
                        v,
                        ambient_c,
                        hvac.hourly_kwh(v, ambient_c),
                    )
                    .in_zone("den"),
                );
                targets.push(v);
            }
        }
        let slot = PlanningSlot::new(h, candidates, 5.0); // generous
        let (bits, _) = planner.plan_slot(&slot, &mut rng);
        let mut actuations = Actuations::new();
        for (idx, adopted) in bits.iter().enumerate() {
            if adopted {
                actuations.insert(("den".to_string(), DeviceClass::Hvac), targets[idx]);
            }
        }
        let report = sim.step(&actuations);
        let obs = &report.zones[0];
        if let Some(&setpoint) = targets.last() {
            if (obs.indoor_c - setpoint).abs() < 2.0 {
                comfort_hours += 1;
            }
        }
        // The twin never exceeds the controlled room in winter heating.
        assert!(obs.ambient_c <= obs.indoor_c + 0.5, "hour {h}");
    }
    // Table II covers 21 h/day; after warm-up most covered hours hold.
    assert!(comfort_hours > 25, "comfort hours = {comfort_hours}");
    assert!(sim.meter().total_kwh() > 5.0);
}

/// The unified rule engine's winners can be applied directly as live
/// actuations: meta-rules beat IFTTT, and the environment responds.
#[test]
fn rule_engine_winners_drive_the_live_engine() {
    let mut sim = winter_sim(&["home"]);
    let mut mrt = Mrt::new();
    mrt.push(imcf::rules::meta_rule::MetaRule::convenience(
        0,
        "Night Heat",
        imcf::rules::window::TimeWindow::hours(0, 8),
        Action::SetTemperature(24.0),
    ));
    let engine = RuleEngine::new()
        .with_mrt(mrt)
        .with_ifttt(IftttTable::flat_table3());

    for h in 0..6u64 {
        let (ambient_c, light) = sim.ambient_preview("home").unwrap();
        let env = imcf::rules::env::EnvSnapshot::neutral()
            .with_month(1)
            .with_hour((h % 24) as u32)
            .with_temperature(ambient_c)
            .with_light(light);
        let eval = engine.evaluate(&env);
        // The meta-rule wins HVAC during its 0–8 window.
        let winner = &eval.winners[&DeviceClass::Hvac];
        assert_eq!(winner.action, Action::SetTemperature(24.0));
        let mut actuations = Actuations::new();
        actuations.insert(
            ("home".to_string(), DeviceClass::Hvac),
            winner.action.desired_value(),
        );
        sim.step(&actuations);
    }
    // Six hours of holding 24 °C in January: the room is visibly warmer
    // than its twin.
    let (twin_c, _) = sim.ambient_preview("home").unwrap();
    let warm = {
        let report = sim.step(&Actuations::new());
        report.zones[0].indoor_c
    };
    assert!(warm > twin_c + 2.0, "room {warm:.1} vs twin {twin_c:.1}");
}
