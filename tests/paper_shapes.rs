//! Integration tests asserting the paper's headline result *shapes* on the
//! real experiment pipeline (datasets → slots → planner/baselines).
//!
//! These are the executable versions of the Fig. 6–9 expectations recorded
//! in DESIGN.md §4. They run the flat dataset end-to-end (the full 3-year
//! horizon) and spot-check the scaled datasets on a shorter window so the
//! suite stays debug-build friendly.

use imcf::core::baselines::{run_ifttt, run_mr, run_nr};
use imcf::core::calendar::HOURS_PER_MONTH;
use imcf::core::init::InitStrategy;
use imcf::core::{AmortizationPlan, ApKind, EnergyPlanner, PlannerConfig};
use imcf::sim::{Dataset, DatasetKind, SlotBuilder};

fn flat() -> (Dataset, AmortizationPlan) {
    let dataset = Dataset::build(DatasetKind::Flat, 0);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    (dataset, plan)
}

#[test]
fn fig6_flat_full_horizon_orderings() {
    let (dataset, plan) = flat();
    let builder = SlotBuilder::new(&dataset, &plan);

    let nr = run_nr(builder.iter());
    let ifttt = run_ifttt(builder.iter());
    let mr = run_mr(builder.iter());
    let ep = EnergyPlanner::from_config(PlannerConfig::default()).plan(builder.iter());

    // F_CE ordering: MR (0) < EP (low single digits) < IFTTT < NR.
    assert_eq!(mr.fce_percent(), 0.0);
    assert!(ep.fce_percent() < 6.0, "EP F_CE = {:.2}", ep.fce_percent());
    assert!(ep.fce_percent() > 0.0);
    assert!(
        ifttt.fce_percent() > 3.0 * ep.fce_percent(),
        "IFTTT {:.2} vs EP {:.2}",
        ifttt.fce_percent(),
        ep.fce_percent()
    );
    assert!(nr.fce_percent() > ifttt.fce_percent());
    assert!(nr.fce_percent() > 30.0, "NR F_CE = {:.2}", nr.fce_percent());

    // F_E ordering: NR (0) < EP ≤ budget < IFTTT, MR.
    assert_eq!(nr.fe_kwh(), 0.0);
    assert!(
        ep.fe_kwh() <= dataset.budget_kwh * 1.001,
        "EP F_E = {:.0}",
        ep.fe_kwh()
    );
    assert!(
        ep.fe_kwh() > 0.5 * dataset.budget_kwh,
        "EP F_E suspiciously low: {:.0}",
        ep.fe_kwh()
    );
    assert!(
        mr.fe_kwh() > dataset.budget_kwh,
        "MR must exceed the budget"
    );
    assert!(ifttt.fe_kwh() > ep.fe_kwh());

    // The EP-vs-MR energy gap is substantial (paper: ≈5 000 kWh on 3 years).
    assert!(mr.fe_kwh() - ep.fe_kwh() > 1_000.0);

    // F_T ordering: baselines ≪ EP.
    assert!(ep.ft_seconds() > nr.ft_seconds());
    assert!(ep.ft_seconds() > mr.ft_seconds());
}

#[test]
fn fig8_initialization_trend_on_flat() {
    let (dataset, plan) = flat();
    let builder = SlotBuilder::new(&dataset, &plan);
    let run = |init: InitStrategy| {
        EnergyPlanner::from_config(PlannerConfig {
            init,
            ..Default::default()
        })
        .plan(builder.iter())
    };
    let ones = run(InitStrategy::AllOnes);
    let zeros = run(InitStrategy::AllZeros);
    // All-0s starts deactivated: with a bounded iteration budget it ends at
    // no more energy and no less error than the all-1s start.
    assert!(
        zeros.fe_kwh() <= ones.fe_kwh() * 1.02,
        "zeros {:.0} vs ones {:.0}",
        zeros.fe_kwh(),
        ones.fe_kwh()
    );
    assert!(
        zeros.fce_percent() >= ones.fce_percent() * 0.98,
        "zeros {:.2} vs ones {:.2}",
        zeros.fce_percent(),
        ones.fce_percent()
    );
}

#[test]
fn fig9_savings_tradeoff_on_flat() {
    let dataset = Dataset::build(DatasetKind::Flat, 0);
    let ecp = dataset.derive_mr_ecp();
    let run = |savings: f64| {
        let plan = AmortizationPlan::new(
            ApKind::Eaf,
            ecp.clone(),
            dataset.budget_kwh,
            dataset.horizon_hours,
            dataset.calendar(),
        )
        .with_savings(savings);
        let builder = SlotBuilder::new(&dataset, &plan);
        EnergyPlanner::from_config(PlannerConfig::default()).plan(builder.iter())
    };
    let base = run(0.0);
    let save20 = run(0.20);
    let save40 = run(0.40);
    // Energy falls monotonically with the savings target…
    assert!(save20.fe_kwh() < base.fe_kwh());
    assert!(save40.fe_kwh() < save20.fe_kwh());
    // …and convenience error rises (the paper's 1–3 point band).
    assert!(save40.fce_percent() > base.fce_percent());
    // The achieved saving tracks the request.
    let achieved = 1.0 - save40.fe_kwh() / base.fe_kwh();
    assert!(
        achieved > 0.25,
        "requested 40 %, achieved {:.1} %",
        achieved * 100.0
    );
}

#[test]
fn fig6_house_short_window_orderings() {
    let dataset = Dataset::build(DatasetKind::House, 0);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    // Two winter months (the trace starts in October; months 3–4 are
    // January–February).
    let window = 3 * HOURS_PER_MONTH..5 * HOURS_PER_MONTH;
    let nr = run_nr(builder.range(window.clone()));
    let mr = run_mr(builder.range(window.clone()));
    let ifttt = run_ifttt(builder.range(window.clone()));
    let ep = EnergyPlanner::from_config(PlannerConfig::default()).plan(builder.range(window));
    assert_eq!(mr.fce_percent(), 0.0);
    assert!(ep.fce_percent() < ifttt.fce_percent());
    assert!(ifttt.fce_percent() < nr.fce_percent());
    assert!(ep.fe_kwh() < mr.fe_kwh());
    assert_eq!(nr.fe_kwh(), 0.0);
}

#[test]
fn fig7_kopt_not_worse_with_larger_k_on_house() {
    let dataset = Dataset::build(DatasetKind::House, 0);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    let window = 3 * HOURS_PER_MONTH..4 * HOURS_PER_MONTH;
    let run = |k: usize| {
        EnergyPlanner::from_config(PlannerConfig {
            k,
            ..Default::default()
        })
        .plan(builder.range(window.clone()))
    };
    let k1 = run(1);
    let k4 = run(4);
    // Larger jumps may not be dramatically better on a small MRT, but they
    // must not be meaningfully worse (the paper's trend is improvement).
    assert!(
        k4.fce_percent() <= k1.fce_percent() * 1.15 + 0.1,
        "k4 {:.3} vs k1 {:.3}",
        k4.fce_percent(),
        k1.fce_percent()
    );
}

#[test]
fn dorms_smoke_on_one_month() {
    let dataset = Dataset::build(DatasetKind::Dorms, 0);
    let ecp = dataset.derive_mr_ecp();
    let plan = AmortizationPlan::new(
        ApKind::Eaf,
        ecp,
        dataset.budget_kwh,
        dataset.horizon_hours,
        dataset.calendar(),
    );
    let builder = SlotBuilder::new(&dataset, &plan);
    let window = 3 * HOURS_PER_MONTH..3 * HOURS_PER_MONTH + 240;
    let ep =
        EnergyPlanner::from_config(PlannerConfig::default()).plan(builder.range(window.clone()));
    let mr = run_mr(builder.range(window));
    assert!(ep.fe_kwh() < mr.fe_kwh());
    assert!(
        ep.fce_percent() < 15.0,
        "dorms EP F_CE = {:.2}",
        ep.fce_percent()
    );
    assert!(ep.slots == 240);
}
